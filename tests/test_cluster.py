"""Cluster resource model: allocation invariants across three resources."""

import pytest

from repro.errors import AllocationError, ConfigurationError
from repro.simulator.cluster import Available, Cluster
from repro.simulator.job import Job


def make_job(jid=1, nodes=4, bb=0.0, ssd=0.0):
    return Job(jid=jid, submit_time=0.0, runtime=100.0, walltime=100.0,
               nodes=nodes, bb=bb, ssd=ssd)


class TestConstruction:
    def test_basic(self):
        c = Cluster(nodes=10, bb_capacity=100.0)
        assert c.total_nodes == 10
        assert c.bb_capacity == 100.0
        assert c.nodes_free == 10
        assert c.bb_free == 100.0

    def test_nonpositive_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster(nodes=0, bb_capacity=1.0)

    def test_negative_bb_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster(nodes=1, bb_capacity=-1.0)

    def test_reserved_fraction_carves_capacity(self):
        # Cori reserves one third of its burst buffer persistently (§4.1).
        c = Cluster(nodes=10, bb_capacity=90.0, bb_reserved_fraction=1.0 / 3.0)
        assert c.bb_capacity == pytest.approx(60.0)

    def test_bad_reserved_fraction(self):
        with pytest.raises(ConfigurationError):
            Cluster(nodes=1, bb_capacity=1.0, bb_reserved_fraction=1.0)

    def test_ssd_tiers_must_cover_all_nodes(self):
        with pytest.raises(ConfigurationError):
            Cluster(nodes=10, bb_capacity=0.0, ssd_tiers={128.0: 4})

    def test_has_ssd_tiers(self):
        assert not Cluster(nodes=4, bb_capacity=0.0).has_ssd_tiers
        assert Cluster(nodes=4, bb_capacity=0.0,
                       ssd_tiers={128.0: 2, 256.0: 2}).has_ssd_tiers


class TestAllocate:
    def test_allocate_updates_usage(self):
        c = Cluster(nodes=10, bb_capacity=100.0)
        c.allocate(make_job(nodes=4, bb=30.0))
        assert c.nodes_used == 4
        assert c.bb_used == 30.0
        assert c.node_utilization() == pytest.approx(0.4)
        assert c.bb_utilization() == pytest.approx(0.3)

    def test_release_restores(self):
        c = Cluster(nodes=10, bb_capacity=100.0)
        job = make_job(nodes=4, bb=30.0)
        c.allocate(job)
        c.release(job)
        assert c.nodes_used == 0
        assert c.bb_used == 0.0

    def test_double_allocate_rejected(self):
        c = Cluster(nodes=10, bb_capacity=100.0)
        job = make_job()
        c.allocate(job)
        with pytest.raises(AllocationError):
            c.allocate(job)

    def test_release_unallocated_rejected(self):
        c = Cluster(nodes=10, bb_capacity=100.0)
        with pytest.raises(AllocationError):
            c.release(make_job())

    def test_node_overflow_rejected(self):
        c = Cluster(nodes=3, bb_capacity=100.0)
        with pytest.raises(AllocationError):
            c.allocate(make_job(nodes=4))

    def test_bb_overflow_rejected(self):
        c = Cluster(nodes=10, bb_capacity=10.0)
        with pytest.raises(AllocationError):
            c.allocate(make_job(bb=20.0))

    def test_failed_alloc_is_atomic(self):
        c = Cluster(nodes=10, bb_capacity=10.0)
        with pytest.raises(AllocationError):
            c.allocate(make_job(nodes=4, bb=20.0))
        assert c.nodes_used == 0
        assert c.bb_used == 0.0

    def test_ssd_allocation_records_assignment(self):
        c = Cluster(nodes=4, bb_capacity=0.0, ssd_tiers={128.0: 2, 256.0: 2})
        job = make_job(nodes=3, ssd=100.0)
        c.allocate(job)
        assert sorted(job.assigned_ssd) == [128.0, 128.0, 256.0]
        assert c.allocated_waste(job) == pytest.approx(28.0 * 2 + 156.0)
        assert c.nodes_by_tier(job) == {128.0: 2, 256.0: 1}

    def test_ssd_too_large_rejected(self):
        c = Cluster(nodes=4, bb_capacity=0.0, ssd_tiers={128.0: 2, 256.0: 2})
        with pytest.raises(AllocationError):
            c.allocate(make_job(nodes=3, ssd=200.0))

    def test_running_jobs(self):
        c = Cluster(nodes=10, bb_capacity=100.0)
        c.allocate(make_job(jid=7))
        assert c.running_jobs() == [7]


class TestAvailable:
    def test_snapshot(self):
        c = Cluster(nodes=10, bb_capacity=100.0)
        c.allocate(make_job(nodes=4, bb=30.0))
        avail = c.available()
        assert avail.nodes == 6
        assert avail.bb == 70.0
        assert avail.ssd_free == {0.0: 6}

    def test_fits(self):
        avail = Available(nodes=5, bb=10.0, ssd_free={0.0: 5})
        assert avail.fits(make_job(nodes=5, bb=10.0))
        assert not avail.fits(make_job(nodes=6))
        assert not avail.fits(make_job(bb=11.0))
        assert not avail.fits(make_job(nodes=2, ssd=1.0))

    def test_fits_with_tiers(self):
        avail = Available(nodes=4, bb=0.0, ssd_free={128.0: 2, 256.0: 2})
        assert avail.fits(make_job(nodes=2, ssd=200.0))
        assert not avail.fits(make_job(nodes=3, ssd=200.0))

    def test_can_fit_mirrors_available(self):
        c = Cluster(nodes=10, bb_capacity=100.0)
        assert c.can_fit(make_job(nodes=10, bb=100.0))
        assert not c.can_fit(make_job(nodes=11))

    def test_fits_mask_empty(self):
        avail = Available(nodes=5, bb=10.0, ssd_free={0.0: 5})
        assert avail.fits_mask([]).shape == (0,)

    def test_fits_mask_matches_fits(self):
        """The batched mask must agree with per-job fits() on every job,
        including SSD requests landing exactly on, between, and above the
        tier capacities."""
        import numpy as np

        rng = np.random.default_rng(3)
        snapshots = [
            Available(nodes=5, bb=10.0, ssd_free={0.0: 5}),
            Available(nodes=4, bb=0.0, ssd_free={128.0: 2, 256.0: 2}),
            Available(nodes=9, bb=50.0, ssd_free={0.0: 3, 128.0: 2, 256.0: 4}),
        ]
        for avail in snapshots:
            jobs = [
                make_job(jid=j, nodes=int(rng.integers(1, 8)),
                         bb=float(rng.integers(0, 15)),
                         ssd=float(rng.choice([0.0, 64.0, 128.0, 200.0,
                                               256.0, 300.0])))
                for j in range(40)
            ]
            expected = [avail.fits(job) for job in jobs]
            assert avail.fits_mask(jobs).tolist() == expected

    def test_bb_utilization_zero_capacity(self):
        c = Cluster(nodes=10, bb_capacity=0.0)
        assert c.bb_utilization() == 0.0
