"""EASY backfilling: shadow-time reservation across multiple resources."""

import pytest

from repro.backfill import EasyBackfill, PlannedRelease
from repro.simulator.job import Job


def make_job(jid, nodes, bb=0.0, walltime=100.0, ssd=0.0):
    return Job(jid=jid, submit_time=0.0, runtime=walltime, walltime=walltime,
               nodes=nodes, bb=bb, ssd=ssd)


def release(end, nodes, bb=0.0, tier=0.0):
    return PlannedRelease(est_end=end, bb=bb, nodes_by_tier={tier: nodes})


class TestEmptyAndTrivial:
    def test_empty_queue(self):
        plan = EasyBackfill().plan([], 0.0, {0.0: 4}, [], now=0.0)
        assert plan.to_start == ()
        assert plan.shadow_time is None

    def test_fitting_heads_start_in_order(self):
        # Classic EASY: queue heads start while they fit — a fitting job
        # left at the head must not have its resources reserved but idle.
        a, b = make_job(1, nodes=2), make_job(2, nodes=2)
        plan = EasyBackfill().plan([a, b], 0.0, {0.0: 4}, [], now=5.0)
        assert [j.jid for j in plan.to_start] == [1, 2]
        assert plan.shadow_time is None

    def test_started_heads_count_as_future_releases(self):
        # Head A starts now; the blocked head B's shadow accounts for A's
        # walltime-estimated release.
        a = make_job(1, nodes=3, walltime=50.0)
        blocked = make_job(2, nodes=4)
        plan = EasyBackfill().plan([a, blocked], 0.0, {0.0: 4}, [], now=0.0)
        assert [j.jid for j in plan.to_start] == [1]
        assert plan.shadow_time == pytest.approx(50.0)


class TestBackfillDecisions:
    def test_short_job_backfills_before_shadow(self):
        # Head needs 4 nodes; 2 free now; release at t=100 frees 2 more.
        head = make_job(1, nodes=4)
        short = make_job(2, nodes=2, walltime=50.0)
        plan = EasyBackfill().plan(
            [head, short], 0.0, {0.0: 2}, [release(100.0, 2)], now=0.0
        )
        assert [j.jid for j in plan.to_start] == [2]
        assert plan.shadow_time == 100.0

    def test_long_job_delaying_head_rejected(self):
        head = make_job(1, nodes=4)
        long = make_job(2, nodes=2, walltime=500.0)  # ends after shadow
        plan = EasyBackfill().plan(
            [head, long], 0.0, {0.0: 2}, [release(100.0, 2)], now=0.0
        )
        assert plan.to_start == ()

    def test_long_job_in_extra_capacity_accepted(self):
        # After head's reservation there is slack; a long job fitting the
        # slack may run past the shadow time.
        head = make_job(1, nodes=4)
        long = make_job(2, nodes=2, walltime=500.0)
        plan = EasyBackfill().plan(
            [head, long], 0.0, {0.0: 2}, [release(100.0, 4)], now=0.0
        )
        # At shadow (t=100): 2 free + 4 released - 4 head = 2 extra ≥ 2.
        assert [j.jid for j in plan.to_start] == [2]

    def test_candidate_must_fit_now(self):
        head = make_job(1, nodes=4)
        big = make_job(2, nodes=3, walltime=10.0)
        plan = EasyBackfill().plan(
            [head, big], 0.0, {0.0: 2}, [release(100.0, 2)], now=0.0
        )
        assert plan.to_start == ()

    def test_burst_buffer_reservation_respected(self):
        # Head blocked on BB; candidate wanting the same BB past shadow is
        # rejected, a BB-free candidate is accepted.
        head = make_job(1, nodes=1, bb=80.0)
        bb_hog = make_job(2, nodes=1, bb=50.0, walltime=500.0)
        clean = make_job(3, nodes=1, walltime=500.0)
        plan = EasyBackfill().plan(
            [head, bb_hog, clean], 50.0, {0.0: 4},
            [release(100.0, 1, bb=40.0)], now=0.0,
        )
        assert [j.jid for j in plan.to_start] == [3]

    def test_multiple_backfills_deplete_pool(self):
        head = make_job(1, nodes=10)
        small = [make_job(i, nodes=2, walltime=10.0) for i in range(2, 6)]
        plan = EasyBackfill().plan(
            [head] + small, 0.0, {0.0: 5}, [release(100.0, 10)], now=0.0
        )
        # Only two 2-node jobs fit in the 5 free nodes.
        assert [j.jid for j in plan.to_start] == [2, 3]

    def test_ssd_tier_reservation(self):
        # Head needs 2 large-SSD nodes; only 1 free now; candidate wanting
        # a large-SSD node for longer than the shadow would delay the head.
        head = make_job(1, nodes=2, ssd=200.0)
        rival = make_job(2, nodes=1, ssd=200.0, walltime=500.0)
        plan = EasyBackfill().plan(
            [head, rival], 0.0, {128.0: 4, 256.0: 1},
            [release(100.0, 1, tier=256.0)], now=0.0,
        )
        assert plan.to_start == ()
        small = make_job(3, nodes=1, ssd=64.0, walltime=500.0)
        plan = EasyBackfill().plan(
            [head, small], 0.0, {128.0: 4, 256.0: 1},
            [release(100.0, 1, tier=256.0)], now=0.0,
        )
        assert [j.jid for j in plan.to_start] == [3]

    def test_unsatisfiable_head_degrades_to_fit_now(self):
        # Head larger than the machine: nothing to protect, candidates that
        # fit may start.
        head = make_job(1, nodes=100)
        small = make_job(2, nodes=1, walltime=10.0)
        plan = EasyBackfill().plan([head, small], 0.0, {0.0: 4}, [], now=0.0)
        assert [j.jid for j in plan.to_start] == [2]
        assert plan.shadow_time is None

    def test_overrun_release_treated_as_imminent(self):
        # A running job past its estimate: its release time clamps to now.
        head = make_job(1, nodes=4)
        cand = make_job(2, nodes=2, walltime=5.0)
        plan = EasyBackfill().plan(
            [head, cand], 0.0, {0.0: 2}, [release(50.0, 2)], now=80.0
        )
        assert plan.shadow_time == pytest.approx(80.0, abs=1e-3)

    def test_priority_order_respected(self):
        # Backfill considers candidates in queue order; an early candidate
        # exhausting the pool shuts out later ones.
        head = make_job(1, nodes=10)
        first = make_job(2, nodes=4, walltime=10.0)
        second = make_job(3, nodes=4, walltime=10.0)
        plan = EasyBackfill().plan(
            [head, first, second], 0.0, {0.0: 5}, [release(100.0, 10)], now=0.0
        )
        assert [j.jid for j in plan.to_start] == [2]
