"""Step-series recorder: exact time-weighted integration."""

import pytest

from repro.errors import ConfigurationError
from repro.simulator.recorder import StepSeries, UsageRecorder


class TestStepSeries:
    def test_initial_level(self):
        s = StepSeries(5.0)
        assert s.integral(0.0, 10.0) == pytest.approx(50.0)

    def test_single_step(self):
        s = StepSeries(0.0)
        s.observe(5.0, 2.0)
        assert s.integral(0.0, 10.0) == pytest.approx(10.0)

    def test_multiple_steps(self):
        s = StepSeries(1.0)
        s.observe(2.0, 3.0)   # [0,2): 1, [2,5): 3, [5,..): 0
        s.observe(5.0, 0.0)
        assert s.integral(0.0, 8.0) == pytest.approx(2.0 + 9.0 + 0.0)

    def test_partial_interval(self):
        s = StepSeries(2.0)
        s.observe(4.0, 6.0)
        assert s.integral(3.0, 5.0) == pytest.approx(2.0 + 6.0)

    def test_interval_before_first_change(self):
        s = StepSeries(2.0)
        s.observe(10.0, 5.0)
        assert s.integral(0.0, 4.0) == pytest.approx(8.0)

    def test_interval_after_last_change_extends_flat(self):
        s = StepSeries(0.0)
        s.observe(1.0, 7.0)
        assert s.integral(5.0, 10.0) == pytest.approx(35.0)

    def test_same_time_overwrites(self):
        s = StepSeries(0.0)
        s.observe(1.0, 5.0)
        s.observe(1.0, 9.0)
        assert s.integral(1.0, 2.0) == pytest.approx(9.0)

    def test_out_of_order_rejected(self):
        s = StepSeries(0.0)
        s.observe(5.0, 1.0)
        with pytest.raises(ConfigurationError):
            s.observe(4.0, 1.0)

    def test_reversed_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            StepSeries(0.0).integral(5.0, 4.0)

    def test_mean(self):
        s = StepSeries(0.0)
        s.observe(5.0, 10.0)
        assert s.mean(0.0, 10.0) == pytest.approx(5.0)

    def test_mean_empty_interval(self):
        assert StepSeries(3.0).mean(1.0, 1.0) == 0.0

    def test_as_arrays(self):
        s = StepSeries(1.0)
        s.observe(2.0, 3.0)
        times, values = s.as_arrays()
        assert times.tolist() == [0.0, 2.0]
        assert values.tolist() == [1.0, 3.0]

    def test_last_accessors(self):
        s = StepSeries(1.0)
        s.observe(4.0, 9.0)
        assert s.last_time == 4.0
        assert s.last_value == 9.0


class TestUsageRecorder:
    def test_observe_cluster_feeds_all_series(self):
        r = UsageRecorder()
        r.observe_cluster(1.0, nodes_used=4, bb_used=10.0, ssd_used=6.0, ssd_waste=2.0)
        assert r.nodes.mean(0.0, 2.0) == pytest.approx(2.0)
        assert r.bb.mean(1.0, 2.0) == pytest.approx(10.0)
        assert r.ssd.mean(1.0, 2.0) == pytest.approx(6.0)
        assert r.ssd_waste.mean(1.0, 2.0) == pytest.approx(2.0)

    def test_observe_queue(self):
        r = UsageRecorder()
        r.observe_queue(2.0, 5)
        assert r.queue.mean(2.0, 4.0) == pytest.approx(5.0)
