"""Step-series recorder: exact time-weighted integration."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.simulator.recorder import ReferenceStepSeries, StepSeries, UsageRecorder

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestStepSeries:
    def test_initial_level(self):
        s = StepSeries(5.0)
        assert s.integral(0.0, 10.0) == pytest.approx(50.0)

    def test_single_step(self):
        s = StepSeries(0.0)
        s.observe(5.0, 2.0)
        assert s.integral(0.0, 10.0) == pytest.approx(10.0)

    def test_multiple_steps(self):
        s = StepSeries(1.0)
        s.observe(2.0, 3.0)   # [0,2): 1, [2,5): 3, [5,..): 0
        s.observe(5.0, 0.0)
        assert s.integral(0.0, 8.0) == pytest.approx(2.0 + 9.0 + 0.0)

    def test_partial_interval(self):
        s = StepSeries(2.0)
        s.observe(4.0, 6.0)
        assert s.integral(3.0, 5.0) == pytest.approx(2.0 + 6.0)

    def test_interval_before_first_change(self):
        s = StepSeries(2.0)
        s.observe(10.0, 5.0)
        assert s.integral(0.0, 4.0) == pytest.approx(8.0)

    def test_interval_after_last_change_extends_flat(self):
        s = StepSeries(0.0)
        s.observe(1.0, 7.0)
        assert s.integral(5.0, 10.0) == pytest.approx(35.0)

    def test_same_time_overwrites(self):
        s = StepSeries(0.0)
        s.observe(1.0, 5.0)
        s.observe(1.0, 9.0)
        assert s.integral(1.0, 2.0) == pytest.approx(9.0)

    def test_out_of_order_rejected(self):
        s = StepSeries(0.0)
        s.observe(5.0, 1.0)
        with pytest.raises(ConfigurationError):
            s.observe(4.0, 1.0)

    def test_reversed_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            StepSeries(0.0).integral(5.0, 4.0)

    def test_mean(self):
        s = StepSeries(0.0)
        s.observe(5.0, 10.0)
        assert s.mean(0.0, 10.0) == pytest.approx(5.0)

    def test_mean_empty_interval(self):
        assert StepSeries(3.0).mean(1.0, 1.0) == 0.0

    def test_as_arrays(self):
        s = StepSeries(1.0)
        s.observe(2.0, 3.0)
        times, values = s.as_arrays()
        assert times.tolist() == [0.0, 2.0]
        assert values.tolist() == [1.0, 3.0]

    def test_last_accessors(self):
        s = StepSeries(1.0)
        s.observe(4.0, 9.0)
        assert s.last_time == 4.0
        assert s.last_value == 9.0


#: Random step functions as (dt, value) pairs; dt == 0 exercises the
#: equal-timestamp overwrite rule (last observation wins).
step_functions = st.lists(
    st.tuples(
        st.sampled_from([0.0, 0.25, 1.0, 3.5, 100.0]),
        st.floats(-50.0, 50.0, allow_nan=False, width=32),
    ),
    min_size=0,
    max_size=80,
)


def _build_pair(initial, steps):
    fast = StepSeries(initial)
    ref = ReferenceStepSeries(initial)
    t = 0.0
    for dt, value in steps:
        t += dt
        fast.observe(t, value)
        ref.observe(t, value)
    return fast, ref, t


class TestStepSeriesDifferential:
    """The numpy-buffered series against the fsum list-backed reference."""

    @given(
        st.floats(-10.0, 10.0, allow_nan=False, width=32),
        step_functions,
        st.floats(0.0, 1.0, allow_nan=False),
        st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(**COMMON)
    def test_integral_matches_reference(self, initial, steps, a, b):
        fast, ref, horizon = _build_pair(initial, steps)
        span = horizon + 10.0
        t0, t1 = sorted((a * span, b * span))
        assert fast.integral(t0, t1) == pytest.approx(
            ref.integral(t0, t1), rel=1e-12, abs=1e-9
        )
        assert fast.mean(t0, t1) == pytest.approx(
            ref.mean(t0, t1), rel=1e-12, abs=1e-9
        )

    @given(st.floats(-10.0, 10.0, allow_nan=False, width=32), step_functions)
    @settings(**COMMON)
    def test_arrays_and_accessors_match(self, initial, steps):
        fast, ref, _ = _build_pair(initial, steps)
        ft, fv = fast.as_arrays()
        rt, rv = ref.as_arrays()
        assert ft.tolist() == rt.tolist()
        assert fv.tolist() == rv.tolist()
        assert len(fast) == len(ref)
        assert fast.last_time == ref.last_time
        assert fast.last_value == ref.last_value

    def test_growth_past_initial_capacity(self):
        """A long series crosses the amortized-doubling boundary; every
        prefix integral still matches the fsum reference."""
        rng = np.random.default_rng(7)
        fast, ref = StepSeries(1.0), ReferenceStepSeries(1.0)
        t = 0.0
        for _ in range(500):
            t += float(rng.choice([0.0, 0.5, 2.0, 9.0]))
            v = float(rng.uniform(-100.0, 100.0))
            fast.observe(t, v)
            ref.observe(t, v)
        for _ in range(200):
            t0, t1 = sorted(rng.uniform(-5.0, t + 5.0, size=2))
            assert fast.integral(t0, t1) == pytest.approx(
                ref.integral(t0, t1), rel=1e-12, abs=1e-9
            )

    def test_overwrite_run_keeps_last(self):
        """A burst of same-timestamp observations collapses to the last."""
        fast, ref = StepSeries(0.0), ReferenceStepSeries(0.0)
        for s in (fast, ref):
            s.observe(2.0, 1.0)
            s.observe(2.0, 5.0)
            s.observe(2.0, -3.0)
        assert fast.integral(0.0, 4.0) == ref.integral(0.0, 4.0) == -6.0
        assert len(fast) == len(ref) == 2

    def test_reference_uses_fsum_compensation(self):
        """Many tiny segments: the reference's fsum keeps the exact sum;
        the numpy pairwise dot must stay within float64 round-off of it."""
        fast, ref = StepSeries(0.0), ReferenceStepSeries(0.0)
        t = 0.0
        for i in range(2000):
            t += 0.1
            for s in (fast, ref):
                s.observe(t, 0.1 * ((-1) ** i))
        expected = math.fsum(
            0.1 * 0.1 * ((-1) ** i) for i in range(2000 - 1)
        )
        assert ref.integral(0.0, t) == pytest.approx(expected, abs=1e-12)
        assert fast.integral(0.0, t) == pytest.approx(expected, abs=1e-9)


class TestUsageRecorder:
    def test_observe_cluster_feeds_all_series(self):
        r = UsageRecorder()
        r.observe_cluster(1.0, nodes_used=4, bb_used=10.0, ssd_used=6.0, ssd_waste=2.0)
        assert r.nodes.mean(0.0, 2.0) == pytest.approx(2.0)
        assert r.bb.mean(1.0, 2.0) == pytest.approx(10.0)
        assert r.ssd.mean(1.0, 2.0) == pytest.approx(6.0)
        assert r.ssd_waste.mean(1.0, 2.0) == pytest.approx(2.0)

    def test_observe_queue(self):
        r = UsageRecorder()
        r.observe_queue(2.0, 5)
        assert r.queue.mean(2.0, 4.0) == pytest.approx(5.0)
