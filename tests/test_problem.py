"""MOO problem formulations: evaluation, feasibility, repair, forced genes."""

import numpy as np
import pytest

from repro.core.problem import (
    SelectionProblem,
    SSDSelectionProblem,
    window_demand_matrix,
)
from repro.errors import SolverError
from repro.simulator.job import Job


def make_job(jid, nodes, bb=0.0, ssd=0.0):
    return Job(jid=jid, submit_time=0.0, runtime=10.0, walltime=10.0,
               nodes=nodes, bb=bb, ssd=ssd)


JOBS = [make_job(1, 80, 20.0), make_job(2, 10, 85.0),
        make_job(3, 40, 5.0), make_job(4, 10, 0.0), make_job(5, 20, 0.0)]


class TestWindowDemandMatrix:
    def test_shape_and_values(self):
        D = window_demand_matrix(JOBS)
        assert D.shape == (5, 2)
        assert D[0].tolist() == [80.0, 20.0]

    def test_empty(self):
        assert window_demand_matrix([]).shape == (0, 2)


class TestSelectionProblem:
    def test_from_window(self):
        p = SelectionProblem.from_window(JOBS, 100, 100.0)
        assert p.w == 5
        assert p.n_objectives == 2

    def test_evaluate(self):
        p = SelectionProblem.from_window(JOBS, 100, 100.0)
        pop = np.array([[1, 0, 0, 0, 1], [0, 1, 1, 1, 1]], dtype=np.uint8)
        F = p.evaluate(pop)
        assert F[0].tolist() == [100.0, 20.0]
        assert F[1].tolist() == [80.0, 90.0]

    def test_feasible(self):
        p = SelectionProblem.from_window(JOBS, 100, 100.0)
        pop = np.array([[1, 1, 0, 0, 0],   # 90 nodes, 105 BB -> infeasible
                        [1, 0, 0, 0, 1]], dtype=np.uint8)
        assert p.feasible(pop).tolist() == [False, True]

    def test_empty_selection_always_feasible(self):
        p = SelectionProblem.from_window(JOBS, 0, 0.0)
        pop = np.zeros((1, 5), dtype=np.uint8)
        assert p.feasible(pop).tolist() == [True]

    def test_repair_produces_feasible(self):
        p = SelectionProblem.from_window(JOBS, 50, 50.0)
        pop = np.ones((8, 5), dtype=np.uint8)
        fixed = p.repair(pop, seed=0)
        assert p.feasible(fixed).all()

    def test_repair_does_not_mutate_input(self):
        p = SelectionProblem.from_window(JOBS, 50, 50.0)
        pop = np.ones((2, 5), dtype=np.uint8)
        p.repair(pop, seed=0)
        assert pop.all()

    def test_repair_keeps_forced(self):
        p = SelectionProblem.from_window(JOBS, 100, 100.0, forced=[1])
        pop = np.ones((10, 5), dtype=np.uint8)
        fixed = p.repair(pop, seed=0)
        assert (fixed[:, 1] == 1).all()
        assert p.feasible(fixed).all()

    def test_forced_exceeding_capacity_rejected(self):
        with pytest.raises(SolverError):
            SelectionProblem.from_window(JOBS, 50, 100.0, forced=[0, 2])  # 120 nodes

    def test_forced_out_of_range_rejected(self):
        with pytest.raises(SolverError):
            SelectionProblem.from_window(JOBS, 100, 100.0, forced=[9])

    def test_random_population_feasible(self):
        p = SelectionProblem.from_window(JOBS, 60, 60.0)
        pop = p.random_population(50, seed=1)
        assert pop.shape == (50, 5)
        assert p.feasible(pop).all()

    def test_negative_demand_rejected(self):
        with pytest.raises(SolverError):
            SelectionProblem(np.array([[-1.0, 0.0]]), [10.0, 10.0])

    def test_capacity_shape_mismatch(self):
        with pytest.raises(SolverError):
            SelectionProblem(np.ones((3, 2)), [10.0])

    def test_population_shape_checked(self):
        p = SelectionProblem.from_window(JOBS, 100, 100.0)
        with pytest.raises(SolverError):
            p.evaluate(np.zeros((2, 4), dtype=np.uint8))


class TestSSDSelectionProblem:
    def _problem(self, forced=()):
        jobs = [make_job(1, 2, bb=10.0, ssd=64.0),
                make_job(2, 2, bb=0.0, ssd=200.0),
                make_job(3, 1, bb=5.0, ssd=0.0)]
        return SSDSelectionProblem(
            jobs, free_nodes=4, free_bb=20.0,
            free_tiers={128.0: 2, 256.0: 2}, forced=forced,
        )

    def test_four_objectives(self):
        assert self._problem().n_objectives == 4

    def test_evaluate_linear_objectives(self):
        p = self._problem()
        pop = np.array([[1, 1, 0]], dtype=np.uint8)
        F = p.evaluate(pop)
        assert F[0, 0] == 4.0                       # nodes
        assert F[0, 1] == 10.0                      # bb
        assert F[0, 2] == 64.0 * 2 + 200.0 * 2      # ssd*nodes

    def test_waste_objective_greedy_assignment(self):
        p = self._problem()
        # Job 1 alone: 2 nodes on the 128 tier, waste (128-64)*2.
        F = p.evaluate(np.array([[1, 0, 0]], dtype=np.uint8))
        assert F[0, 3] == pytest.approx(-(128.0 - 64.0) * 2)
        # Jobs 1+2: job1 takes both 128s, job2 both 256s.
        F = p.evaluate(np.array([[1, 1, 0]], dtype=np.uint8))
        assert F[0, 3] == pytest.approx(-(64.0 * 2 + 56.0 * 2))

    def test_tier_feasibility(self):
        # Two large-SSD jobs would need 4 nodes with >=200GB; only 2 exist.
        jobs = [make_job(1, 2, ssd=200.0), make_job(2, 2, ssd=200.0)]
        p2 = SSDSelectionProblem(jobs, 4, 0.0, {128.0: 2, 256.0: 2})
        pop = np.array([[1, 1], [1, 0]], dtype=np.uint8)
        assert p2.feasible(pop).tolist() == [False, True]

    def test_bb_constraint(self):
        jobs = [make_job(1, 1, bb=15.0), make_job(2, 1, bb=15.0)]
        p2 = SSDSelectionProblem(jobs, 4, 20.0, {128.0: 2, 256.0: 2})
        pop = np.array([[1, 1]], dtype=np.uint8)
        assert not p2.feasible(pop)[0]

    def test_window_order_fixes_assignment(self):
        # Earlier window job gets the small tier first.
        jobs = [make_job(1, 2, ssd=64.0), make_job(2, 2, ssd=100.0)]
        p = SSDSelectionProblem(jobs, 4, 0.0, {128.0: 2, 256.0: 2})
        F = p.evaluate(np.array([[1, 1]], dtype=np.uint8))
        # job1 takes 128s (waste 64*2); job2 spills to 256s (waste 156*2).
        assert F[0, 3] == pytest.approx(-(64.0 * 2 + 156.0 * 2))

    def test_tier_count_mismatch_rejected(self):
        with pytest.raises(SolverError):
            SSDSelectionProblem([make_job(1, 1)], 5, 0.0, {128.0: 2, 256.0: 2})

    def test_forced_validation(self):
        with pytest.raises(SolverError):
            jobs = [make_job(1, 4, ssd=200.0)]
            SSDSelectionProblem(jobs, 4, 0.0, {128.0: 2, 256.0: 2}, forced=[0])

    def test_repair_feasible(self):
        p = self._problem()
        pop = np.ones((6, 3), dtype=np.uint8)
        fixed = p.repair(pop, seed=0)
        assert p.feasible(fixed).all()
