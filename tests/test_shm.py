"""Shared-memory trace segments: layout, checksums, lifecycle, fallback."""

import json

import pytest

from repro.errors import ShmCorruptionError
from repro.experiments.config import get_scale
from repro.experiments.workloads import get_workload
from repro.service.shm import (
    NAME_PREFIX,
    TracePublisher,
    _attach_untracked,
    attach_or_none,
    attach_trace,
    publish_trace,
    segment_name,
    unlink_segment,
    verify_segment,
)
from repro.telemetry.metrics import MetricsRegistry

SMOKE = get_scale("smoke")


@pytest.fixture()
def trace():
    return get_workload("Cori-S1", SMOKE)


@pytest.fixture()
def name(tmp_path):
    """A unique segment name per test, unlinked afterwards no matter what."""
    seg = segment_name(str(tmp_path / "svc.sock"), "Cori-S1", "smoke")
    yield seg
    unlink_segment(seg)


def _flip_byte(name, offset):
    shm = _attach_untracked(name)
    try:
        shm.buf[offset] ^= 0xFF
    finally:
        shm.close()


class TestSegmentRoundtrip:
    def test_publish_attach_preserves_trace(self, trace, name):
        publish_trace(trace, name)
        loaded = attach_trace(name)
        assert loaded.name == trace.name
        assert loaded.machine.name == trace.machine.name
        assert loaded.machine.nodes == trace.machine.nodes
        assert len(loaded) == len(trace)
        for a, b in zip(loaded.jobs, trace.jobs):
            assert a.jid == b.jid
            assert a.submit_time == b.submit_time
            assert a.nodes == b.nodes
            assert a.deps == b.deps

    def test_attached_jobs_are_private(self, trace, name):
        """Jobs carry mutable state, so attach must not share them."""
        publish_trace(trace, name)
        first = attach_trace(name)
        first.jobs[0].start_time = 123.0
        second = attach_trace(name)
        assert second.jobs[0].start_time != 123.0

    def test_verify_returns_header(self, trace, name):
        publish_trace(trace, name)
        header = verify_segment(name)
        assert header["trace"] == trace.name
        assert header["n_jobs"] == len(trace)

    def test_missing_segment_is_file_not_found(self, name):
        with pytest.raises(FileNotFoundError):
            attach_trace(name)

    def test_segment_name_is_deterministic_and_prefixed(self, tmp_path):
        a = segment_name(str(tmp_path / "a.sock"), "Cori-S1", "smoke")
        b = segment_name(str(tmp_path / "a.sock"), "Cori-S1", "smoke")
        other = segment_name(str(tmp_path / "b.sock"), "Cori-S1", "smoke")
        assert a == b
        assert a != other
        assert a.startswith(NAME_PREFIX)


class TestCorruptionDetection:
    def test_data_byte_flip_detected(self, trace, name):
        publish_trace(trace, name)
        shm = _attach_untracked(name)
        size = shm.size
        shm.close()
        _flip_byte(name, size - 1)  # last data byte
        with pytest.raises(ShmCorruptionError):
            attach_trace(name)

    def test_bad_magic_detected(self, trace, name):
        publish_trace(trace, name)
        _flip_byte(name, 0)
        with pytest.raises(ShmCorruptionError):
            verify_segment(name)

    def test_header_corruption_detected(self, trace, name):
        publish_trace(trace, name)
        _flip_byte(name, 20)  # inside the JSON header
        with pytest.raises(ShmCorruptionError):
            verify_segment(name)

    def test_attach_or_none_degrades_silently(self, trace, name):
        assert attach_or_none(None) is None
        assert attach_or_none(name) is None  # absent
        publish_trace(trace, name)
        assert attach_or_none(name) is not None
        _flip_byte(name, 0)
        assert attach_or_none(name) is None  # corrupt

    def test_worker_falls_back_to_regeneration(self, trace, name, monkeypatch):
        from repro.service import tasks

        monkeypatch.setenv("REPRO_SCALE", "smoke")
        before = tasks._SHM_FALLBACKS
        regenerated = tasks._resolve_trace("Cori-S1", SMOKE, name)
        assert regenerated.name == trace.name
        assert tasks._SHM_FALLBACKS == before + 1


class TestUnlink:
    def test_unlink_idempotent(self, trace, name):
        publish_trace(trace, name)
        assert unlink_segment(name) is True
        assert unlink_segment(name) is False
        assert unlink_segment(name) is False


class TestTracePublisher:
    def socket(self, tmp_path):
        return str(tmp_path / "svc.sock")

    def test_ensure_is_idempotent(self, tmp_path):
        pub = TracePublisher(self.socket(tmp_path))
        try:
            first = pub.ensure("Cori-S1", "smoke")
            second = pub.ensure("Cori-S1", "smoke")
            assert first == second
            assert pub.names() == [first]
        finally:
            pub.close()

    def test_adopts_intact_segment_from_previous_life(self, tmp_path):
        metrics = MetricsRegistry()
        first = TracePublisher(self.socket(tmp_path), metrics)
        name = first.ensure("Cori-S1", "smoke")
        # No close(): simulate a SIGKILL.  The next life must adopt.
        second = TracePublisher(self.socket(tmp_path), metrics)
        try:
            assert second.ensure("Cori-S1", "smoke") == name
            counters = metrics.snapshot()["counters"]
            assert counters.get("service.shm_published", 0) == 1  # only once
        finally:
            second.close()

    def test_republishes_corrupt_segment_and_counts(self, tmp_path):
        metrics = MetricsRegistry()
        first = TracePublisher(self.socket(tmp_path), metrics)
        name = first.ensure("Cori-S1", "smoke")
        _flip_byte(name, 0)
        second = TracePublisher(self.socket(tmp_path), metrics)
        try:
            assert second.ensure("Cori-S1", "smoke") == name
            verify_segment(name)  # republished intact
            counters = metrics.snapshot()["counters"]
            assert counters.get("service.shm_corrupt") == 1
            assert counters.get("service.shm_published") == 2
        finally:
            second.close()

    def test_close_unlinks_and_removes_manifest(self, tmp_path):
        pub = TracePublisher(self.socket(tmp_path))
        name = pub.ensure("Cori-S1", "smoke")
        assert pub.manifest_path.exists()
        pub.close()
        assert not pub.manifest_path.exists()
        with pytest.raises(FileNotFoundError):
            verify_segment(name)
        pub.close()  # idempotent

    def test_orphan_sweep_covers_untouched_segments(self, tmp_path):
        """A segment the next life never serves still dies at its close."""
        first = TracePublisher(self.socket(tmp_path))
        name = first.ensure("Cori-S1", "smoke")
        # SIGKILL'd: manifest left behind, segment still published.
        second = TracePublisher(self.socket(tmp_path))
        assert name in second._orphans
        second.close()  # never called ensure() for Cori-S1
        with pytest.raises(FileNotFoundError):
            verify_segment(name)

    def test_manifest_garbage_is_ignored(self, tmp_path):
        path = self.socket(tmp_path)
        TracePublisher(path)  # creates nothing yet
        manifest = tmp_path / "svc.sock.shm"
        manifest.write_text("not json")
        pub = TracePublisher(path)
        assert pub._orphans == set()
        manifest.write_text(json.dumps(["/etc/passwd", 42]))
        pub = TracePublisher(path)
        assert pub._orphans == set()  # non-prefixed names refused
