"""End-to-end chaos tests: the service's crash-tolerance contract.

These drive the real harness in ``tools/chaos.py`` — a ``repro serve``
daemon subprocess in its own process group, a seeded chaos plan, and the
journal audit — at smoke scale, small enough for the regular suite.  The
plans here are the same ones validated by hand; their seeds pin the
request mix, the kill points, and the torn-tail cuts, so a failure is
replayable with ``python tools/chaos.py --seed <seed> ...``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from chaos import ChaosHarness, ChaosPlan, run_chaos  # noqa: E402

from repro.checkpoint.journal import JsonlJournal
from repro.errors import CheckpointError
from repro.service.journal import RequestJournal


@pytest.fixture(autouse=True)
def _smoke_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")


class TestPlanDeterminism:
    def test_same_seed_same_requests(self, tmp_path):
        a = ChaosHarness(ChaosPlan(seed=3, requests=5), str(tmp_path / "a"))
        b = ChaosHarness(ChaosPlan(seed=3, requests=5), str(tmp_path / "b"))
        assert a.build_requests() == b.build_requests()

    def test_different_seeds_differ(self, tmp_path):
        a = ChaosHarness(ChaosPlan(seed=3, requests=8), str(tmp_path / "a"))
        b = ChaosHarness(ChaosPlan(seed=4, requests=8), str(tmp_path / "b"))
        assert a.build_requests() != b.build_requests()

    def test_poison_requests_expect_quarantine(self, tmp_path):
        harness = ChaosHarness(
            ChaosPlan(seed=0, requests=4, poison_requests=2),
            str(tmp_path / "p"))
        specs = harness.build_requests()
        assert [s["expect"] for s in specs[:2]] == ["quarantined"] * 2
        assert all(s["chaos"] == {"crash_attempts": -1} for s in specs[:2])


class TestTailRepair:
    """The torn-tail repair that daemon recovery relies on."""

    def _journal_with_records(self, path, n=2):
        journal = JsonlJournal(path)
        for i in range(n):
            journal.append({"k": i})
        return journal

    def test_intact_journal_untouched(self, tmp_path):
        journal = self._journal_with_records(tmp_path / "j.jsonl")
        before = journal.path.read_bytes()
        assert journal.repair_tail() == 0
        assert journal.path.read_bytes() == before

    def test_torn_final_line_truncated(self, tmp_path):
        journal = self._journal_with_records(tmp_path / "j.jsonl")
        raw = journal.path.read_bytes()
        journal.path.write_bytes(raw[:-7])  # cut inside the last record
        removed = journal.repair_tail()
        assert removed > 0
        assert list(journal.replay()) == [(1, {"k": 0})]
        assert journal.dropped_tail == 0
        # And the journal is appendable again without stranding damage.
        journal.append({"k": 9})
        assert [r for _, r in journal.replay()] == [{"k": 0}, {"k": 9}]

    def test_missing_newline_reterminated(self, tmp_path):
        journal = self._journal_with_records(tmp_path / "j.jsonl")
        raw = journal.path.read_bytes()
        journal.path.write_bytes(raw[:-1])  # tear off only the "\n"
        assert journal.repair_tail() == 0
        journal.append({"k": 9})
        assert [r["k"] for _, r in journal.replay()] == [0, 1, 9]

    def test_request_journal_repair(self, tmp_path):
        path = tmp_path / "svc.jsonl"
        journal = RequestJournal(path)
        journal.append_request("r000001", 1, {"workload": "Cori-S1"})
        journal.append_request("r000002", 2, {"workload": "Theta-S1"})
        raw = path.read_bytes()
        path.write_bytes(raw[:-11])
        assert journal.load().dropped_tail == 1
        assert journal.repair() > 0
        view = journal.load()
        assert view.dropped_tail == 0
        assert list(view.requests) == ["r000001"]
        # Post-repair appends must never trip the interior-damage check.
        journal.append_failed("r000001", "boom", 500, 1)
        journal.load()

    def test_interior_damage_still_raises(self, tmp_path):
        journal = self._journal_with_records(tmp_path / "j.jsonl", n=3)
        lines = journal.path.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"torn\n'
        journal.path.write_bytes(b"".join(lines))
        assert journal.repair_tail() == 0  # final line is fine
        with pytest.raises(CheckpointError, match="line 2"):
            list(journal.replay())


class TestChaosEndToEnd:
    """Full plans against a real daemon subprocess (smoke scale)."""

    def test_daemon_kill_and_torn_tail(self, tmp_path):
        plan = ChaosPlan(seed=0, requests=6, daemon_kills=1,
                         truncate_tail=True, deadline=10.0, retries=3,
                         scale="smoke", timeout=240.0)
        report = run_chaos(plan, workdir=str(tmp_path))
        audit = report["audit"]
        assert audit["exactly_once"] is True
        assert audit["expectation_mismatches"] == {}
        assert audit["records_audited"] == 6
        assert sum(report["outcomes"].values()) == 6
        assert report["outcomes"] == {"done": 6}
        # Seed 0 is pinned to fire its kill point mid-backlog.
        assert report["daemon_kills"] == 1
        assert len(report["recoveries"]) == 2  # initial start + 1 restart
        for recovery in report["recoveries"]:
            assert recovery["ready_s"] < 30.0
        # The journal is independently auditable after the fact.
        view = RequestJournal(tmp_path / "chaos.jsonl").load(
            verify_payloads=True)
        assert len(view.terminal) == 6
        assert not view.pending()

    def test_poison_request_quarantined(self, tmp_path):
        plan = ChaosPlan(seed=7, requests=5, poison_requests=1,
                         daemon_kills=0, deadline=10.0, retries=3,
                         scale="smoke", timeout=240.0)
        report = run_chaos(plan, workdir=str(tmp_path))
        assert report["audit"]["expectation_mismatches"] == {}
        assert report["outcomes"] == {"done": 4, "quarantined": 1}
