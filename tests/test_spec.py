"""Machine specifications (Table 2)."""

import pytest

from repro.errors import ConfigurationError
from repro.units import PB
from repro.workloads.spec import CORI, MACHINES, THETA, MachineSpec, get_machine


class TestPaperSpecs:
    def test_cori_table2(self):
        assert CORI.nodes == 12_076
        assert CORI.bb_capacity == pytest.approx(1.8 * PB)
        assert CORI.base_policy == "fcfs"

    def test_cori_persistent_reservation(self):
        # One third of Cori's burst buffer is persistently reserved (§4.1).
        assert CORI.schedulable_bb == pytest.approx(1.2 * PB)

    def test_theta_table2(self):
        assert THETA.nodes == 4_392
        assert THETA.bb_capacity == pytest.approx(2.16 * PB)
        assert THETA.base_policy == "wfp"
        assert THETA.schedulable_bb == THETA.bb_capacity

    def test_registry(self):
        assert get_machine("cori") is CORI
        assert get_machine("THETA") is THETA
        assert set(MACHINES) == {"cori", "theta"}

    def test_unknown_machine(self):
        with pytest.raises(ConfigurationError):
            get_machine("summit")


class TestValidation:
    def test_nonpositive_nodes(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(name="x", nodes=0, bb_capacity=1.0)

    def test_negative_bb(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(name="x", nodes=1, bb_capacity=-1.0)

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(name="x", nodes=1, bb_capacity=0.0, base_policy="lifo")

    def test_ssd_tier_coverage(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(name="x", nodes=4, bb_capacity=0.0,
                        ssd_tiers=((128.0, 2),))


class TestMakeCluster:
    def test_cluster_matches_spec(self):
        cluster = THETA.make_cluster()
        assert cluster.total_nodes == THETA.nodes
        assert cluster.bb_capacity == pytest.approx(THETA.schedulable_bb)

    def test_fresh_instances(self):
        assert THETA.make_cluster() is not THETA.make_cluster()

    def test_ssd_tiers_propagate(self):
        spec = THETA.with_ssd_split()
        cluster = spec.make_cluster()
        assert cluster.has_ssd_tiers


class TestScaled:
    def test_scale_divides(self):
        small = THETA.scaled(8)
        assert small.nodes == THETA.nodes // 8
        assert small.bb_capacity == pytest.approx(THETA.bb_capacity / 8)
        assert small.name == "Theta/8"

    def test_scale_one_is_identity(self):
        assert THETA.scaled(1) is THETA

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            THETA.scaled(0)

    def test_scaled_with_tiers_consistent(self):
        spec = THETA.with_ssd_split().scaled(8)
        assert sum(n for _, n in spec.ssd_tiers) == spec.nodes
        spec.make_cluster()  # must not raise


class TestSSDSplit:
    def test_fifty_fifty(self):
        spec = THETA.with_ssd_split()
        tiers = dict(spec.ssd_tiers)
        assert set(tiers) == {128.0, 256.0}
        assert abs(tiers[128.0] - tiers[256.0]) <= 1
        assert tiers[128.0] + tiers[256.0] == spec.nodes

    def test_ssd_total(self):
        spec = MachineSpec(name="x", nodes=4, bb_capacity=0.0,
                           ssd_tiers=((128.0, 2), (256.0, 2)))
        assert spec.ssd_total == 768.0

    def test_no_tiers_total_zero(self):
        assert THETA.ssd_total == 0.0

    def test_custom_fraction(self):
        spec = THETA.with_ssd_split(small_fraction=1.0)
        assert dict(spec.ssd_tiers) == {128.0: THETA.nodes}

    def test_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            THETA.with_ssd_split(small_fraction=1.5)
