"""Shard router: consistent hashing, failover, adoption, reconciliation."""

import asyncio
import os
import threading
import time

import pytest

from repro.errors import ServiceError, ShardError, TransientServiceError
from repro.service import (
    HashRing,
    Routed,
    ServiceClient,
    ServiceConfig,
    ServiceDaemon,
    ShardRouter,
)
from repro.service.client import NO_RETRY, ClientRetryPolicy

SMOKE = {"workload": "Cori-S1", "method": "Baseline", "scale": "smoke"}


@pytest.fixture(autouse=True)
def _smoke_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")


# --- the ring ------------------------------------------------------------------
class TestHashRing:
    ENDPOINTS = [f"/tmp/shard{i}.sock" for i in range(4)]

    def test_needs_endpoints(self):
        with pytest.raises(ShardError):
            HashRing([])

    def test_deterministic(self):
        a = HashRing(self.ENDPOINTS)
        b = HashRing(self.ENDPOINTS)
        for key in ("k1", "k2", "k3"):
            assert a.preference(key) == b.preference(key)

    def test_preference_covers_every_endpoint_once(self):
        ring = HashRing(self.ENDPOINTS)
        pref = ring.preference("some-key")
        assert sorted(pref) == sorted(self.ENDPOINTS)
        assert pref[0] == ring.node("some-key")

    def test_distribution_is_roughly_balanced(self):
        ring = HashRing(self.ENDPOINTS)
        counts = {e: 0 for e in self.ENDPOINTS}
        for i in range(2000):
            counts[ring.node(f"key-{i}")] += 1
        # With 64 vnodes each shard should land within a loose band of
        # the fair share (500): no shard starved, none dominating.
        for endpoint, n in counts.items():
            assert 200 < n < 900, (endpoint, counts)

    def test_adding_endpoint_remaps_a_minority(self):
        before = HashRing(self.ENDPOINTS)
        after = HashRing(self.ENDPOINTS + ["/tmp/shard4.sock"])
        keys = [f"key-{i}" for i in range(2000)]
        moved = sum(before.node(k) != after.node(k) for k in keys)
        # Consistent hashing: ~1/5 of keys move to the new shard; plain
        # modulo hashing would reshuffle ~4/5.
        assert moved < len(keys) * 0.45

    def test_duplicate_endpoints_deduped(self):
        ring = HashRing([self.ENDPOINTS[0], self.ENDPOINTS[0],
                         self.ENDPOINTS[1]])
        assert len(ring.endpoints) == 2


# --- routing decisions (no I/O) ------------------------------------------------
class TestRouting:
    def make_router(self):
        return ShardRouter(
            [f"/tmp/nope{i}.sock" for i in range(3)],
            seed=7, retry=NO_RETRY, timeout=0.2, recover_timeout=0.2,
            probe_poll=0.01)

    def test_route_prefers_primary_when_all_up(self):
        router = self.make_router()
        info = router.route("k")
        assert info["target"] == info["preference"][0]

    def test_route_skips_down_shards(self):
        router = self.make_router()
        info = router.route("k")
        router._health[info["preference"][0]].up = False
        rerouted = router.route("k")
        assert rerouted["target"] == info["preference"][1]

    def test_route_with_everything_down(self):
        router = self.make_router()
        for health in router._health.values():
            health.up = False
        assert router.route("k")["target"] is None

    def test_check_marks_dead_endpoints_down(self):
        router = self.make_router()
        router.down_after = 1
        result = router.check()
        assert set(result.values()) == {False}
        assert all(not up for up in router.healthy().values())

    def test_new_key_is_seeded(self):
        a = self.make_router().new_key()
        b = self.make_router().new_key()
        assert a == b
        assert a.startswith("req-")

    def test_ordered_targets_put_healthy_first(self):
        router = self.make_router()
        pref = router.ring.preference("k")
        router._health[pref[0]].up = False
        ordered = router._ordered_targets("k")
        assert ordered[-1] == pref[0]
        assert ordered[:2] == [e for e in pref if e != pref[0]]


# --- reconciliation (stub shards) ----------------------------------------------
class _StubShard:
    """Stands in for a ServiceClient during reconcile() tests."""

    def __init__(self, statuses):
        self.statuses = dict(statuses)  # key -> status dict, or None for 404
        self.cancelled = []

    def status_by_key(self, key):
        status = self.statuses.get(key)
        if status is None:
            raise ServiceError(f"no request with key {key}", code=404)
        return status

    def cancel(self, request_id, reason=None):
        self.cancelled.append((request_id, reason))
        return {"ok": True, "id": request_id, "state": "cancelled"}


class TestReconcile:
    def make_router(self):
        return ShardRouter(["/tmp/a.sock", "/tmp/b.sock"], seed=0,
                           retry=NO_RETRY, timeout=0.2)

    def test_live_duplicate_is_cancelled(self):
        router = self.make_router()
        stub = _StubShard({"k1": {"ok": True, "id": "r7", "state": "queued"}})
        router.clients["/tmp/a.sock"] = stub
        router._health["/tmp/a.sock"].owed_cancels.append("k1")
        assert router.reconcile("/tmp/a.sock") == 1
        assert stub.cancelled[0][0] == "r7"
        assert router.reconciled == 1
        assert router._health["/tmp/a.sock"].owed_cancels == []

    def test_done_duplicate_is_a_conflict(self):
        router = self.make_router()
        stub = _StubShard({"k1": {"ok": True, "id": "r7", "state": "done"}})
        router.clients["/tmp/a.sock"] = stub
        router._health["/tmp/a.sock"].owed_cancels.append("k1")
        assert router.reconcile("/tmp/a.sock") == 0
        assert stub.cancelled == []
        assert router.conflicts == 1

    def test_unknown_key_is_clean(self):
        router = self.make_router()
        stub = _StubShard({})
        router.clients["/tmp/a.sock"] = stub
        router._health["/tmp/a.sock"].owed_cancels.append("k1")
        assert router.reconcile("/tmp/a.sock") == 0
        assert router.reconciled == 0
        assert router._health["/tmp/a.sock"].owed_cancels == []

    def test_recovery_transition_triggers_reconcile(self):
        router = self.make_router()
        stub = _StubShard({"k1": {"ok": True, "id": "r7", "state": "queued"}})
        router.clients["/tmp/a.sock"] = stub
        health = router._health["/tmp/a.sock"]
        health.up = False
        health.owed_cancels.append("k1")
        router._mark_success("/tmp/a.sock")  # down -> up edge
        assert router.reconciled == 1


# --- live shards ---------------------------------------------------------------
class ShardFixture:
    """Two in-thread daemons behind one router."""

    def __init__(self, tmp_path, start=(True, True)):
        self.endpoints = [str(tmp_path / f"shard{i}.sock") for i in range(2)]
        self.daemons = []
        self.threads = []
        self.start_mask = start
        self.router = ShardRouter(
            self.endpoints, seed=11, timeout=5.0,
            retry=ClientRetryPolicy(attempts=2), recover_timeout=1.0,
            probe_poll=0.05)
        for i, endpoint in enumerate(self.endpoints):
            if not start[i]:
                self.daemons.append(None)
                continue
            daemon = ServiceDaemon(ServiceConfig(
                socket_path=endpoint,
                journal_path=str(tmp_path / f"shard{i}.jsonl"),
                workers=1, high_water=16, shard=f"{i}/2"))
            thread = threading.Thread(
                target=lambda d=daemon: asyncio.run(d.serve()), daemon=True)
            thread.start()
            self.daemons.append(daemon)
            self.threads.append(thread)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if all(self.router.clients[e].alive()
                   for i, e in enumerate(self.endpoints) if start[i]):
                return
            time.sleep(0.02)
        raise RuntimeError("shards did not come up")

    def key_for(self, endpoint_index):
        """A key whose primary is shard ``endpoint_index``."""
        target = self.endpoints[endpoint_index]
        for i in range(10_000):
            key = f"pin-{i}"
            if self.router.ring.node(key) == target:
                return key
        raise AssertionError("no key found")

    def close(self):
        for endpoint in self.endpoints:
            try:
                ServiceClient(endpoint, timeout=2.0,
                              retry=NO_RETRY).shutdown(mode="now")
            except ServiceError:
                pass
        for thread in self.threads:
            thread.join(10.0)


@pytest.fixture()
def shards(tmp_path):
    fixture = ShardFixture(tmp_path)
    yield fixture
    fixture.close()


class TestShardedSubmit:
    def test_submit_routes_to_primary(self, shards):
        key = shards.key_for(0)
        routed = shards.router.submit(idempotency_key=key, **SMOKE)
        assert routed.endpoint == shards.endpoints[0]
        assert not routed.failover and not routed.deduped
        status = shards.router.wait(routed, timeout=120.0)
        assert status["state"] == "done"

    def test_resubmit_same_key_is_deduped(self, shards):
        key = shards.key_for(0)
        first = shards.router.submit(idempotency_key=key, **SMOKE)
        second = shards.router.submit(idempotency_key=key, **SMOKE)
        assert second.deduped
        assert second.request_id == first.request_id

    def test_dead_primary_fails_over(self, tmp_path):
        fixture = ShardFixture(tmp_path, start=(False, True))
        try:
            key = fixture.key_for(0)  # primary is the never-started shard
            routed = fixture.router.submit(idempotency_key=key, **SMOKE)
            assert routed.endpoint == fixture.endpoints[1]
            assert routed.failover
            assert fixture.router.failovers == 1
            status = fixture.router.wait(routed, timeout=120.0)
            assert status["state"] == "done"
        finally:
            fixture.close()

    def test_ambiguous_submit_adopts_existing_request(self, shards):
        key = shards.key_for(0)
        accepted = shards.router.clients[shards.endpoints[0]].submit(
            idempotency_key=key, **SMOKE)
        client = shards.router.clients[shards.endpoints[0]]
        original_submit = client.submit
        calls = {"n": 0}

        def ambiguous_once(**params):
            if calls["n"] == 0:
                calls["n"] += 1
                err = TransientServiceError("connection reset mid-ack")
                err.sent = True
                raise err
            return original_submit(**params)

        client.submit = ambiguous_once
        try:
            routed = shards.router.submit(idempotency_key=key, **SMOKE)
        finally:
            client.submit = original_submit
        assert routed.adopted
        assert routed.request_id == accepted["id"]
        assert shards.router.adoptions == 1

    def test_wait_all_names_all_pending_keys(self, shards):
        key = shards.key_for(0)
        routed = shards.router.submit(idempotency_key=key, **SMOKE)
        phantom = Routed(key="never-ran", endpoint=routed.endpoint,
                         request_id="r999999")
        from repro.errors import ServiceTimeout
        with pytest.raises(ServiceError) as excinfo:
            try:
                shards.router.wait_all([routed, phantom], timeout=120.0)
            except ServiceTimeout:
                raise
        # The phantom id draws a 404 from a live shard, not a timeout.
        assert excinfo.value.code == 404

    def test_stats_aggregates_and_flags_down_shards(self, tmp_path):
        fixture = ShardFixture(tmp_path, start=(True, False))
        try:
            stats = fixture.router.stats()
            up, down = fixture.endpoints
            assert stats["shards"][up]["ok"]
            assert stats["shards"][down]["ok"] is False
            assert "router" in stats
        finally:
            fixture.close()
