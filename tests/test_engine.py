"""Discrete-event scheduling engine: full simulation behaviour."""

import pytest

from repro.backfill import EasyBackfill
from repro.errors import TraceError
from repro.methods import NaiveSelector, make_selector
from repro.policies import FCFS, WFP
from repro.simulator.cluster import Cluster
from repro.simulator.engine import SchedulingEngine
from repro.simulator.job import Job, JobState
from repro.windows import WindowPolicy

TB = 1024.0


def make_job(jid, submit=0.0, runtime=100.0, nodes=1, bb=0.0, ssd=0.0,
             walltime=None, deps=()):
    return Job(jid=jid, submit_time=submit, runtime=runtime,
               walltime=walltime or runtime, nodes=nodes, bb=bb, ssd=ssd,
               deps=frozenset(deps))


def run_sim(jobs, nodes=10, bb=0.0, selector=None, policy=None, window=None,
            backfill=True, ssd_tiers=None, backfill_scope="window"):
    cluster = Cluster(nodes=nodes, bb_capacity=bb, ssd_tiers=ssd_tiers)
    engine = SchedulingEngine(
        cluster,
        policy or FCFS(),
        selector or NaiveSelector(),
        window or WindowPolicy(size=5),
        backfill=EasyBackfill() if backfill else None,
        backfill_scope=backfill_scope,
    )
    return engine.run(jobs)


class TestBasicExecution:
    def test_single_job(self):
        res = run_sim([make_job(1, submit=5.0, runtime=50.0)])
        job = res.jobs[0]
        assert job.state is JobState.COMPLETED
        assert job.start_time == 5.0
        assert job.end_time == 55.0
        assert res.makespan == 55.0

    def test_all_jobs_complete(self):
        jobs = [make_job(i, submit=float(i), nodes=3) for i in range(20)]
        res = run_sim(jobs)
        assert all(j.state is JobState.COMPLETED for j in res.jobs)

    def test_parallel_execution_when_fits(self):
        jobs = [make_job(1, nodes=5), make_job(2, nodes=5)]
        res = run_sim(jobs)
        assert res.jobs[0].start_time == res.jobs[1].start_time == 0.0

    def test_queueing_when_full(self):
        jobs = [make_job(1, nodes=10, runtime=100.0), make_job(2, nodes=10)]
        res = run_sim(jobs)
        assert res.jobs[1].start_time == 100.0

    def test_never_fitting_job_rejected_upfront(self):
        with pytest.raises(TraceError):
            run_sim([make_job(1, nodes=99)])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(TraceError):
            run_sim([make_job(1), make_job(1)])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(TraceError):
            run_sim([make_job(1, deps={42})])

    def test_empty_trace(self):
        res = run_sim([])
        assert res.jobs == []
        assert res.makespan == 0.0


class TestResourceAccounting:
    def test_usage_recorded(self):
        res = run_sim([make_job(1, nodes=5, runtime=100.0)])
        # 5 nodes busy for the full makespan.
        assert res.recorder.nodes.mean(0.0, 100.0) == pytest.approx(5.0)

    def test_bb_released_at_completion(self):
        jobs = [make_job(1, runtime=50.0, bb=40.0),
                make_job(2, submit=60.0, runtime=50.0, bb=80.0)]
        res = run_sim(jobs, bb=100.0)
        assert res.jobs[1].start_time == 60.0
        assert res.recorder.bb.mean(0.0, 50.0) == pytest.approx(40.0)

    def test_bb_contention_serialises(self):
        jobs = [make_job(1, runtime=100.0, bb=80.0), make_job(2, bb=80.0)]
        res = run_sim(jobs, bb=100.0)
        assert res.jobs[1].start_time == 100.0

    def test_ssd_accounting(self):
        jobs = [make_job(1, nodes=2, runtime=100.0, ssd=64.0)]
        res = run_sim(jobs, nodes=4, ssd_tiers={128.0: 2, 256.0: 2})
        assert res.recorder.ssd.mean(0.0, 100.0) == pytest.approx(128.0)
        assert res.recorder.ssd_waste.mean(0.0, 100.0) == pytest.approx(128.0)
        assert res.ssd_capacity == 2 * 128.0 + 2 * 256.0


class TestDependencies:
    def test_dependent_job_waits(self):
        jobs = [make_job(1, runtime=100.0), make_job(2, deps={1})]
        res = run_sim(jobs)
        assert res.jobs[1].start_time >= 100.0

    def test_chain(self):
        jobs = [make_job(1, runtime=10.0),
                make_job(2, runtime=10.0, deps={1}),
                make_job(3, runtime=10.0, deps={2})]
        res = run_sim(jobs)
        assert res.jobs[2].start_time >= 20.0


class TestBackfillIntegration:
    def test_small_job_backfills_around_blocker(self):
        # J1 occupies 8 nodes; J2 (8 nodes) must wait; J3 (2 nodes, short)
        # backfills immediately because it ends before J1 does.
        jobs = [make_job(1, nodes=8, runtime=100.0),
                make_job(2, submit=1.0, nodes=8, runtime=100.0),
                make_job(3, submit=2.0, nodes=2, runtime=10.0)]
        res = run_sim(jobs, window=WindowPolicy(size=3))
        assert res.jobs[2].start_time == 2.0
        assert res.stats.backfilled_jobs >= 1

    def test_window_scope_limits_candidates(self):
        # With a 1-job window and window-scoped backfill, J3 never enters
        # the candidate set, so it waits despite fitting.
        jobs = [make_job(1, nodes=8, runtime=100.0),
                make_job(2, submit=1.0, nodes=8, runtime=100.0),
                make_job(3, submit=2.0, nodes=2, runtime=10.0)]
        res = run_sim(jobs, window=WindowPolicy(size=1))
        assert res.jobs[2].start_time > 2.0

    def test_queue_scope_admits_beyond_window(self):
        jobs = [make_job(1, nodes=8, runtime=100.0),
                make_job(2, submit=1.0, nodes=8, runtime=100.0),
                make_job(3, submit=2.0, nodes=2, runtime=10.0)]
        res = run_sim(jobs, window=WindowPolicy(size=1), backfill_scope="queue")
        assert res.jobs[2].start_time == 2.0

    def test_backfill_never_delays_head(self):
        # J3 is long: backfilling it would delay J2 → it must wait.
        jobs = [make_job(1, nodes=8, runtime=100.0),
                make_job(2, submit=1.0, nodes=8, runtime=100.0),
                make_job(3, submit=2.0, nodes=4, runtime=1000.0)]
        res = run_sim(jobs, window=WindowPolicy(size=1))
        assert res.jobs[1].start_time == pytest.approx(100.0)

    def test_disable_backfill(self):
        jobs = [make_job(1, nodes=8, runtime=100.0),
                make_job(2, submit=1.0, nodes=8, runtime=100.0),
                make_job(3, submit=2.0, nodes=2, runtime=10.0)]
        res = run_sim(jobs, window=WindowPolicy(size=1), backfill=False)
        assert res.jobs[2].start_time > 2.0


class TestTable1EndToEnd:
    def test_naive_runs_j1_then_backfills_j4(self):
        """The full Table 1 scenario through the engine: the naive method
        starts J1, blocks on J2, and EASY backfilling slips J4 in."""
        jobs = [make_job(1, nodes=80, bb=20 * TB, runtime=100.0),
                make_job(2, nodes=10, bb=85 * TB, runtime=100.0),
                make_job(3, nodes=40, bb=5 * TB, runtime=100.0),
                make_job(4, nodes=10, bb=0.0, runtime=100.0),
                make_job(5, nodes=20, bb=0.0, runtime=100.0)]
        res = run_sim(jobs, nodes=100, bb=100 * TB, window=WindowPolicy(size=5))
        by_id = {j.jid: j for j in res.jobs}
        assert by_id[1].start_time == 0.0
        assert by_id[4].start_time == 0.0     # backfilled
        assert by_id[2].start_time > 0.0
        # Node usage at t=0: J1 + J4 = 90 of 100 (Table 1b, Solution 1).
        assert res.recorder.nodes.mean(0.0, 1.0) == pytest.approx(90.0)

    def test_bbsched_achieves_solution3(self):
        jobs = [make_job(1, nodes=80, bb=20 * TB, runtime=100.0),
                make_job(2, nodes=10, bb=85 * TB, runtime=100.0),
                make_job(3, nodes=40, bb=5 * TB, runtime=100.0),
                make_job(4, nodes=10, bb=0.0, runtime=100.0),
                make_job(5, nodes=20, bb=0.0, runtime=100.0)]
        sel = make_selector("BBSched", generations=300, seed=0)
        res = run_sim(jobs, nodes=100, bb=100 * TB, selector=sel,
                      window=WindowPolicy(size=5))
        by_id = {j.jid: j for j in res.jobs}
        for jid in (2, 3, 4, 5):
            assert by_id[jid].start_time == 0.0
        assert by_id[1].start_time > 0.0


class TestStarvation:
    def test_forced_job_eventually_runs(self):
        # A BB-hungry job the naive method would block on forever gets
        # forced after the starvation bound.
        jobs = [make_job(1, nodes=2, runtime=50.0, bb=90.0)]
        # Keep the machine busy with a stream of small jobs.
        jobs += [make_job(10 + i, submit=float(i), nodes=2, runtime=30.0, bb=20.0)
                 for i in range(30)]
        res = run_sim(jobs, nodes=10, bb=100.0,
                      selector=make_selector("Constrained_CPU", generations=10, seed=0),
                      window=WindowPolicy(size=3, starvation_bound=5))
        big = res.jobs[0]
        assert big.state is JobState.COMPLETED

    def test_forced_stat_counted(self):
        jobs = [make_job(1, nodes=2, runtime=50.0, bb=90.0)]
        jobs += [make_job(10 + i, submit=float(i), nodes=2, runtime=30.0, bb=20.0)
                 for i in range(30)]
        res = run_sim(jobs, nodes=10, bb=100.0,
                      selector=make_selector("Constrained_CPU", generations=10, seed=0),
                      window=WindowPolicy(size=3, starvation_bound=5))
        assert res.stats.forced_jobs + res.stats.selected_jobs + \
            res.stats.backfilled_jobs == len(jobs)


class TestStats:
    def test_stats_account_for_every_job(self):
        jobs = [make_job(i, submit=float(i), nodes=3, runtime=50.0)
                for i in range(15)]
        res = run_sim(jobs)
        total = (res.stats.selected_jobs + res.stats.forced_jobs +
                 res.stats.backfilled_jobs)
        assert total == len(jobs)

    def test_selector_timing_recorded(self):
        jobs = [make_job(i, submit=float(i), nodes=3) for i in range(5)]
        sel = make_selector("BBSched", generations=10, seed=0)
        res = run_sim(jobs, selector=sel)
        assert res.stats.selector_calls > 0
        assert res.stats.selector_time > 0.0
        assert res.stats.mean_selector_time > 0.0

    def test_mean_selector_time_zero_without_calls(self):
        res = run_sim([])
        assert res.stats.mean_selector_time == 0.0


class TestDeterminism:
    def test_identical_runs(self):
        def once():
            jobs = [make_job(i, submit=float(i % 7), nodes=1 + i % 5,
                             runtime=30.0 + i, bb=float(i % 3) * 10.0)
                    for i in range(25)]
            sel = make_selector("BBSched", generations=20, seed=11)
            res = run_sim(jobs, nodes=12, bb=100.0, selector=sel, policy=WFP())
            return [(j.jid, j.start_time) for j in res.jobs]

        assert once() == once()
