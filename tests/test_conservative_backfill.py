"""Conservative (reservation-per-job) backfilling."""

import pytest

from repro.backfill import ConservativeBackfill, EasyBackfill, PlannedRelease
from repro.simulator.job import Job


def make_job(jid, nodes, bb=0.0, walltime=100.0):
    return Job(jid=jid, submit_time=0.0, runtime=walltime, walltime=walltime,
               nodes=nodes, bb=bb)


def release(end, nodes, bb=0.0):
    return PlannedRelease(est_end=end, bb=bb, nodes_by_tier={0.0: nodes})


class TestConstruction:
    def test_depth_validation(self):
        with pytest.raises(ValueError):
            ConservativeBackfill(depth=0)

    def test_none_depth_allowed(self):
        assert ConservativeBackfill(depth=None).depth is None


class TestPlanning:
    def test_empty_queue(self):
        plan = ConservativeBackfill().plan([], 0.0, {0.0: 4}, [], now=0.0)
        assert plan.to_start == ()

    def test_fitting_heads_start(self):
        jobs = [make_job(1, 2), make_job(2, 2)]
        plan = ConservativeBackfill().plan(jobs, 0.0, {0.0: 4}, [], now=0.0)
        assert [j.jid for j in plan.to_start] == [1, 2]

    def test_candidate_may_not_delay_any_reserved_job(self):
        # 4 nodes free now, 4 more release at t=100 (8 total).
        # blocked1 (5n) reserves [100,200) leaving 3; blocked2 (6n)
        # reserves [200,300) leaving 2.  A 3-node candidate running for
        # 300s fits now and fits blocked1's leftover — EASY admits it —
        # but collides with blocked2's reservation, so the conservative
        # planner must hold it back.
        blocked1 = make_job(1, nodes=5, walltime=100.0)
        blocked2 = make_job(2, nodes=6, walltime=100.0)
        long_cand = make_job(3, nodes=3, walltime=300.0)
        queue = [blocked1, blocked2, long_cand]
        rel = [release(100.0, 4)]

        easy_plan = EasyBackfill().plan(queue, 0.0, {0.0: 4}, rel, now=0.0)
        cons_plan = ConservativeBackfill().plan(queue, 0.0, {0.0: 4}, rel, now=0.0)
        assert [j.jid for j in easy_plan.to_start] == [3]
        assert all(j.jid != 3 for j in cons_plan.to_start)

    def test_short_candidate_still_backfills(self):
        blocked = make_job(1, nodes=4, walltime=100.0)
        short = make_job(2, nodes=2, walltime=50.0)
        plan = ConservativeBackfill().plan(
            [blocked, short], 0.0, {0.0: 2}, [release(100.0, 4)], now=0.0)
        assert [j.jid for j in plan.to_start] == [2]

    def test_depth_one_close_to_easy(self):
        # With depth=1 only the first blocked job is protected.
        blocked1 = make_job(1, nodes=4, walltime=100.0)
        short = make_job(2, nodes=2, walltime=50.0)
        plan = ConservativeBackfill(depth=1).plan(
            [blocked1, short], 0.0, {0.0: 2}, [release(100.0, 4)], now=0.0)
        # depth=1 stops scanning after the first reservation, so the short
        # candidate behind it is not even considered.
        assert plan.shadow_time == pytest.approx(100.0)

    def test_shadow_time_reported(self):
        blocked = make_job(1, nodes=4)
        plan = ConservativeBackfill().plan(
            [blocked], 0.0, {0.0: 2}, [release(77.0, 4)], now=0.0)
        assert plan.shadow_time == pytest.approx(77.0)

    def test_bb_reservations_respected(self):
        blocked = make_job(1, nodes=1, bb=80.0, walltime=100.0)
        hog = make_job(2, nodes=1, bb=50.0, walltime=500.0)
        plan = ConservativeBackfill().plan(
            [blocked, hog], 50.0, {0.0: 4},
            [release(100.0, 1, bb=40.0)], now=0.0)
        assert all(j.jid != 2 for j in plan.to_start)


class TestEngineIntegration:
    def test_full_run(self):
        from repro.methods import make_selector
        from repro.policies import FCFS
        from repro.simulator.cluster import Cluster
        from repro.simulator.engine import SchedulingEngine
        from repro.simulator.job import JobState
        from repro.windows import WindowPolicy

        jobs = [Job(jid=i, submit_time=float(i), runtime=25.0, walltime=40.0,
                    nodes=1 + i % 4, bb=float(i % 3) * 8.0)
                for i in range(25)]
        engine = SchedulingEngine(
            Cluster(nodes=8, bb_capacity=30.0), FCFS(),
            make_selector("Baseline"), WindowPolicy(size=5),
            backfill=ConservativeBackfill(),
        )
        result = engine.run(jobs)
        assert all(j.state is JobState.COMPLETED for j in result.jobs)
