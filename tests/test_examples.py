"""The shipped examples must run end to end (the fast ones, at least)."""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )


class TestQuickstart:
    def test_runs_and_reproduces_table1(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "True Pareto set" in proc.stdout
        assert "J2+J3+J4+J5" in proc.stdout
        assert "BBSched decision" in proc.stdout


class TestDarshanPipeline:
    def test_runs(self, tmp_path):
        proc = run_example("darshan_pipeline.py", str(tmp_path))
        assert proc.returncode == 0, proc.stderr
        assert "wrote job log" in proc.stdout
        assert "simulation:" in proc.stdout
        assert (tmp_path / "theta.swf").exists()
        assert (tmp_path / "theta_darshan.csv").exists()


class TestGAWalkthrough:
    def test_runs_and_shows_front(self):
        proc = run_example("ga_walkthrough.py")
        assert proc.returncode == 0, proc.stderr
        assert "True Pareto set" in proc.stdout
        assert "generation 0:" in proc.stdout
        assert "final Pareto approximation" in proc.stdout


class TestCompareMethods:
    def test_runs_small(self):
        proc = run_example("compare_methods.py", "60")
        assert proc.returncode == 0, proc.stderr
        assert "Baseline" in proc.stdout
        assert "BBSched" in proc.stdout


class TestFaultTolerance:
    def test_runs_and_demonstrates_degradation(self):
        proc = run_example("fault_tolerance.py")
        assert proc.returncode == 0, proc.stderr
        assert "ideal hardware:" in proc.stdout
        assert "faulty hardware:" in proc.stdout
        assert "node failures" in proc.stdout
        assert "requeued" in proc.stdout
        assert "breaker tripped True" in proc.stdout


class TestTraceARun:
    def test_runs_and_exports_valid_traces(self, tmp_path):
        proc = run_example("trace_a_run.py", str(tmp_path))
        assert proc.returncode == 0, proc.stderr
        assert "top spans by total wall-clock time" in proc.stdout
        assert "schedule_pass" in proc.stdout
        assert "GA generations traced" in proc.stdout
        assert "selector latency" in proc.stdout
        assert "full telemetry report" in proc.stdout
        assert (tmp_path / "trace.json").exists()
        assert (tmp_path / "trace.jsonl").exists()
