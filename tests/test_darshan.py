"""Synthetic Darshan logs and BB-request extraction (§4.1 Theta pipeline)."""

import pytest

from repro.errors import ConfigurationError
from repro.units import GB
from repro.workloads.darshan import (
    BB_EXTRACTION_THRESHOLD,
    DarshanRecord,
    enhance_trace_with_darshan,
    extract_bb_requests,
    read_darshan_csv,
    synthesize_darshan_log,
    write_darshan_csv,
)
from repro.workloads.generator import generate, theta_profile


@pytest.fixture(scope="module")
def trace():
    return generate(theta_profile(n_jobs=500, bb_fraction=0.0), seed=4)


class TestDarshanRecord:
    def test_data_moved(self):
        r = DarshanRecord(jid=1, bytes_read=2.0, bytes_written=3.0)
        assert r.data_moved == 5.0


class TestSynthesize:
    def test_instrumented_fraction(self, trace):
        records = synthesize_darshan_log(trace, seed=0)
        # §4.1: 40 % of Theta jobs have Darshan recording.
        assert len(records) / len(trace) == pytest.approx(0.40, abs=0.06)

    def test_heavy_fraction_of_all_jobs(self, trace):
        records = synthesize_darshan_log(trace, seed=0)
        heavy = [r for r in records if r.data_moved > BB_EXTRACTION_THRESHOLD]
        # §4.1: 17.18 % of all jobs move more than 1 GB.
        assert len(heavy) / len(trace) == pytest.approx(0.1718, abs=0.05)

    def test_deterministic(self, trace):
        a = synthesize_darshan_log(trace, seed=1)
        b = synthesize_darshan_log(trace, seed=1)
        assert [(r.jid, r.data_moved) for r in a] == \
               [(r.jid, r.data_moved) for r in b]

    def test_record_jids_belong_to_trace(self, trace):
        ids = {j.jid for j in trace}
        assert all(r.jid in ids for r in synthesize_darshan_log(trace, seed=2))

    def test_invalid_fraction(self, trace):
        with pytest.raises(ConfigurationError):
            synthesize_darshan_log(trace, instrumented_fraction=2.0)


class TestExtraction:
    def test_threshold_rule(self):
        records = [
            DarshanRecord(jid=1, bytes_read=0.3, bytes_written=0.3),  # 0.6 GB
            DarshanRecord(jid=2, bytes_read=5.0, bytes_written=5.0),  # 10 GB
        ]
        out = extract_bb_requests(records)
        assert out == {2: 10.0}

    def test_exact_threshold_excluded(self):
        records = [DarshanRecord(jid=1, bytes_read=1.0 * GB, bytes_written=0.0)]
        assert extract_bb_requests(records) == {}


class TestEnhancement:
    def test_requests_attached(self, trace):
        records = synthesize_darshan_log(trace, seed=3)
        enhanced = enhance_trace_with_darshan(trace, records)
        expected = extract_bb_requests(records)
        by_id = {j.jid: j for j in enhanced}
        cap = trace.machine.schedulable_bb
        for jid, bb in expected.items():
            assert by_id[jid].bb == pytest.approx(min(bb, cap))

    def test_unrecorded_jobs_unchanged(self, trace):
        records = synthesize_darshan_log(trace, seed=3)
        enhanced = enhance_trace_with_darshan(trace, records)
        touched = set(extract_bb_requests(records))
        for a, b in zip(trace, enhanced):
            if a.jid not in touched:
                assert b.bb == a.bb

    def test_full_paper_pipeline(self, trace):
        """Synthesize → extract → enhance gives ≈17 % BB-requesting jobs."""
        records = synthesize_darshan_log(trace, seed=5)
        enhanced = enhance_trace_with_darshan(trace, records)
        assert enhanced.bb_fraction() == pytest.approx(0.1718, abs=0.05)


class TestCSVRoundTrip:
    def test_round_trip(self, trace, tmp_path):
        records = synthesize_darshan_log(trace, seed=6)[:20]
        path = tmp_path / "darshan.csv"
        write_darshan_csv(records, path)
        back = read_darshan_csv(path)
        assert [(r.jid, r.n_files) for r in back] == \
               [(r.jid, r.n_files) for r in records]
        for a, b in zip(records, back):
            assert a.data_moved == pytest.approx(b.data_moved)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y\n1,2\n")
        with pytest.raises(ConfigurationError):
            read_darshan_csv(path)
