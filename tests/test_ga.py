"""Multi-objective genetic algorithm (§3.2.2)."""

import numpy as np
import pytest

from repro.core.exhaustive import ExhaustiveSolver
from repro.core.ga import MOGASolver, ParetoSet, crowding_distance
from repro.core.gd import generational_distance
from repro.core.problem import SelectionProblem
from repro.errors import SolverError
from repro.simulator.job import Job


def make_job(jid, nodes, bb):
    return Job(jid=jid, submit_time=0.0, runtime=10.0, walltime=10.0,
               nodes=nodes, bb=bb)


def table1_problem(forced=()):
    jobs = [make_job(1, 80, 20.0), make_job(2, 10, 85.0),
            make_job(3, 40, 5.0), make_job(4, 10, 0.0), make_job(5, 20, 0.0)]
    return SelectionProblem.from_window(jobs, 100, 100.0, forced=forced)


class TestConstruction:
    def test_defaults_match_paper(self):
        s = MOGASolver()
        assert s.generations == 500
        assert s.population == 20
        assert s.mutation == pytest.approx(0.0005)

    @pytest.mark.parametrize("kw", [
        dict(generations=-1), dict(population=1),
        dict(mutation=1.5), dict(selection="bogus"),
    ])
    def test_invalid_params(self, kw):
        with pytest.raises(SolverError):
            MOGASolver(**kw)


class TestSolve:
    def test_finds_table1_pareto_set(self):
        """The §1 example: the GA must find both Pareto solutions."""
        result = MOGASolver(generations=300, seed=0).solve(table1_problem())
        sols = {tuple(g) for g in result.genes}
        assert (1, 0, 0, 0, 1) in sols      # Solution 2
        assert (0, 1, 1, 1, 1) in sols      # Solution 3

    def test_all_solutions_feasible(self):
        problem = table1_problem()
        result = MOGASolver(generations=100, seed=1).solve(problem)
        assert problem.feasible(result.genes).all()

    def test_result_is_internally_non_dominated(self):
        result = MOGASolver(generations=100, seed=2).solve(table1_problem())
        F = result.objectives
        for i in range(len(result)):
            for j in range(len(result)):
                if i != j:
                    assert not ((F[j] >= F[i]).all() and (F[j] > F[i]).any())

    def test_deterministic_given_seed(self):
        a = MOGASolver(generations=50, seed=3).solve(table1_problem())
        b = MOGASolver(generations=50, seed=3).solve(table1_problem())
        assert (a.genes == b.genes).all()

    def test_different_seeds_explore_differently(self):
        problem = table1_problem()
        a = problem.random_population(20, seed=1)
        b = problem.random_population(20, seed=2)
        assert (a != b).any()

    def test_zero_generations_still_returns_front(self):
        result = MOGASolver(generations=0, seed=0).solve(table1_problem())
        assert len(result) >= 1

    def test_empty_window(self):
        problem = SelectionProblem(np.zeros((0, 2)), [10.0, 10.0])
        result = MOGASolver(generations=10, seed=0).solve(problem)
        assert len(result) == 0

    def test_single_gene_window(self):
        problem = SelectionProblem(np.array([[5.0, 5.0]]), [10.0, 10.0])
        result = MOGASolver(generations=10, seed=0).solve(problem)
        assert (1,) in {tuple(g) for g in result.genes}

    def test_forced_genes_always_selected(self):
        problem = table1_problem(forced=[3])
        result = MOGASolver(generations=50, seed=0).solve(problem)
        assert (result.genes[:, 3] == 1).all()

    def test_gd_improves_with_generations(self):
        """Figure 4's headline trend: more generations → smaller GD."""
        problem = table1_problem()
        true = ExhaustiveSolver().solve(problem)
        gds = []
        for G in (0, 20, 300):
            gd_vals = []
            for seed in range(5):
                approx = MOGASolver(generations=G, seed=seed).solve(problem)
                gd_vals.append(generational_distance(
                    approx.objectives, true.objectives,
                    normalize=[100.0, 100.0]))
            gds.append(np.mean(gd_vals))
        assert gds[2] <= gds[0]
        assert gds[2] == pytest.approx(0.0, abs=1e-9)

    def test_crowding_ablation_also_solves(self):
        result = MOGASolver(generations=300, selection="crowding", seed=0).solve(
            table1_problem())
        sols = {tuple(g) for g in result.genes}
        assert (1, 0, 0, 0, 1) in sols

    def test_population_matches_against_larger_window(self):
        rng = np.random.default_rng(5)
        jobs = [make_job(i, int(rng.integers(1, 40)), float(rng.integers(0, 50)))
                for i in range(12)]
        problem = SelectionProblem.from_window(jobs, 100, 100.0)
        result = MOGASolver(generations=200, seed=0).solve(problem)
        assert problem.feasible(result.genes).all()
        assert len(result) >= 1


class TestParetoSet:
    def test_best_by(self):
        ps = ParetoSet(
            genes=np.array([[1, 0], [0, 1]], dtype=np.uint8),
            objectives=np.array([[5.0, 1.0], [1.0, 9.0]]),
        )
        assert ps.best_by(0) == 0
        assert ps.best_by(1) == 1

    def test_best_by_tie_breaks_lowest_index(self):
        """A tied maximum must dispatch the lowest row index, always.

        Decision rules pick the dispatched solution via best_by; on a tied
        front any other tie-break would make runs platform-dependent.
        """
        ps = ParetoSet(
            genes=np.array([[1, 0], [0, 1], [1, 1]], dtype=np.uint8),
            objectives=np.array([[7.0, 2.0], [7.0, 5.0], [3.0, 5.0]]),
        )
        assert ps.best_by(0) == 0  # rows 0 and 1 tie on objective 0
        assert ps.best_by(1) == 1  # rows 1 and 2 tie on objective 1

    def test_best_by_empty_raises(self):
        ps = ParetoSet(genes=np.zeros((0, 2), dtype=np.uint8),
                       objectives=np.zeros((0, 2)))
        with pytest.raises(SolverError):
            ps.best_by(0)

    def test_row_mismatch_rejected(self):
        with pytest.raises(SolverError):
            ParetoSet(genes=np.zeros((2, 2), dtype=np.uint8),
                      objectives=np.zeros((1, 2)))


class TestEvalCache:
    def test_stats_none_when_disabled(self):
        s = MOGASolver(generations=10, population=8, eval_cache=False, seed=0)
        s.solve(table1_problem())
        assert s.eval_cache_stats is None

    def test_stats_zero_before_first_solve(self):
        s = MOGASolver(eval_cache=True)
        assert s.eval_cache_stats == {
            "hits": 0, "misses": 0, "deduped": 0, "evictions": 0,
        }

    def test_stats_accumulate_across_solves(self):
        s = MOGASolver(generations=15, population=8, eval_cache=True, seed=0)
        s.solve(table1_problem())
        first = s.eval_cache_stats
        assert first["hits"] > 0 and first["misses"] > 0
        s.solve(table1_problem())
        second = s.eval_cache_stats
        assert second["hits"] > first["hits"]

    def test_store_cleared_between_solves(self):
        """Chromosome bytes are meaningless across problems — a stale
        entry would serve wrong objectives, so each solve starts empty."""
        s = MOGASolver(generations=10, population=8, eval_cache=True, seed=0)
        s.solve(table1_problem())
        jobs = [make_job(1, 3, 50.0), make_job(2, 4, 10.0)]
        other = SelectionProblem.from_window(jobs, 10, 60.0)
        result = s.solve(other)
        assert other.feasible(result.genes).all()
        assert np.allclose(result.objectives, other.evaluate(result.genes))

    def test_invalid_capacity_rejected(self):
        with pytest.raises(SolverError):
            MOGASolver(cache_capacity=0)

    def test_pickle_drops_cache_and_results_stay_identical(self):
        """The memo store never rides along in a checkpoint: pickling
        drops it, and the restored solver rebuilds it lazily producing
        byte-identical output from its restored RNG."""
        import pickle

        problem = table1_problem()
        a = MOGASolver(generations=20, population=8, eval_cache=True, seed=9)
        b = pickle.loads(pickle.dumps(a))
        assert b._cache is None
        ra, rb = a.solve(problem), b.solve(problem)
        assert ra.genes.tobytes() == rb.genes.tobytes()
        assert ra.objectives.tobytes() == rb.objectives.tobytes()
        # Warm solver pickled mid-life: store still dropped, output still equal.
        c = pickle.loads(pickle.dumps(a))
        assert c._cache is None
        rc = c.solve(problem)
        ra2 = a.solve(problem)
        assert rc.genes.tobytes() == ra2.genes.tobytes()


class TestCrowdingDistance:
    def test_boundaries_infinite(self):
        F = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        d = crowding_distance(F)
        assert np.isinf(d[0]) and np.isinf(d[3])
        assert np.isfinite(d[1]) and np.isfinite(d[2])

    def test_empty(self):
        assert crowding_distance(np.zeros((0, 2))).size == 0

    def test_middle_spacing(self):
        F = np.array([[0.0, 4.0], [1.0, 3.0], [3.0, 1.0], [4.0, 0.0]])
        d = crowding_distance(F)
        assert d[1] == pytest.approx(d[2])
