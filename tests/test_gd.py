"""Generational distance and hypervolume (§3.2.3)."""

import numpy as np
import pytest

from repro.core.gd import generational_distance, hypervolume_2d
from repro.errors import SolverError


class TestGenerationalDistance:
    def test_zero_when_subset(self):
        front = np.array([[1.0, 2.0], [2.0, 1.0]])
        assert generational_distance(front, front) == 0.0

    def test_average_of_min_distances(self):
        true = np.array([[0.0, 0.0]])
        sols = np.array([[3.0, 4.0], [0.0, 0.0]])  # distances 5 and 0
        assert generational_distance(sols, true) == pytest.approx(2.5)

    def test_min_over_true_set(self):
        true = np.array([[0.0, 0.0], [10.0, 10.0]])
        sols = np.array([[9.0, 10.0]])
        assert generational_distance(sols, true) == pytest.approx(1.0)

    def test_normalization(self):
        true = np.array([[0.0, 0.0]])
        sols = np.array([[100.0, 0.0]])
        gd = generational_distance(sols, true, normalize=[100.0, 1.0])
        assert gd == pytest.approx(1.0)

    def test_both_empty(self):
        assert generational_distance(np.zeros((0, 2)), np.zeros((0, 2))) == 0.0

    def test_one_empty_raises(self):
        with pytest.raises(SolverError):
            generational_distance(np.zeros((0, 2)), np.ones((1, 2)))

    def test_dim_mismatch(self):
        with pytest.raises(SolverError):
            generational_distance(np.ones((1, 2)), np.ones((1, 3)))

    def test_bad_normalize(self):
        with pytest.raises(SolverError):
            generational_distance(np.ones((1, 2)), np.ones((1, 2)), normalize=[1.0])
        with pytest.raises(SolverError):
            generational_distance(np.ones((1, 2)), np.ones((1, 2)),
                                  normalize=[1.0, 0.0])

    def test_1d_rejected(self):
        with pytest.raises(SolverError):
            generational_distance(np.ones(3), np.ones((1, 2)))


class TestHypervolume2D:
    def test_single_point(self):
        assert hypervolume_2d(np.array([[2.0, 3.0]])) == pytest.approx(6.0)

    def test_staircase(self):
        front = np.array([[3.0, 1.0], [1.0, 3.0]])
        # 3x1 plus 1x(3-1) = 5
        assert hypervolume_2d(front) == pytest.approx(5.0)

    def test_dominated_point_ignored(self):
        front = np.array([[3.0, 3.0], [1.0, 1.0]])
        assert hypervolume_2d(front) == pytest.approx(9.0)

    def test_reference_point(self):
        assert hypervolume_2d(np.array([[2.0, 3.0]]),
                              reference=(1.0, 1.0)) == pytest.approx(2.0)

    def test_points_below_reference_excluded(self):
        assert hypervolume_2d(np.array([[0.5, 0.5]]),
                              reference=(1.0, 1.0)) == 0.0

    def test_empty(self):
        assert hypervolume_2d(np.zeros((0, 2))) == 0.0

    def test_wrong_shape(self):
        with pytest.raises(SolverError):
            hypervolume_2d(np.zeros((2, 3)))

    def test_monotone_in_front_growth(self):
        small = np.array([[2.0, 2.0]])
        large = np.array([[2.0, 2.0], [3.0, 1.0]])
        assert hypervolume_2d(large) >= hypervolume_2d(small)
