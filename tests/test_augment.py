"""Workload augmentation: S1–S4 burst buffer, S5–S7 local SSD."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.augment import (
    S12_RANGE_FRACTION,
    S34_RANGE_FRACTION,
    add_ssd_requests,
    expand_bb_requests,
    make_bb_suite,
    make_ssd_suite,
)
from repro.workloads.generator import generate, theta_profile


@pytest.fixture(scope="module")
def base_trace():
    return generate(theta_profile(n_jobs=400), seed=1)


class TestExpandBBRequests:
    def test_fraction_reached(self, base_trace):
        out = expand_bb_requests(base_trace, fraction=0.5,
                                 min_request=1000.0, seed=0)
        assert out.bb_fraction() == pytest.approx(0.5, abs=0.01)

    def test_existing_requests_untouched(self, base_trace):
        out = expand_bb_requests(base_trace, fraction=0.5,
                                 min_request=1000.0, seed=0)
        for a, b in zip(base_trace, out):
            if a.uses_bb:
                assert b.bb == a.bb

    def test_new_requests_within_range(self, base_trace):
        lo, hi = 5000.0, 50000.0
        out = expand_bb_requests(base_trace, fraction=0.75, min_request=lo,
                                 max_request=hi, seed=0)
        new = [b.bb for a, b in zip(base_trace, out)
               if not a.uses_bb and b.uses_bb]
        assert new
        assert all(lo <= v <= hi for v in new)

    def test_capped_at_schedulable(self, base_trace):
        out = expand_bb_requests(base_trace, fraction=1.0,
                                 min_request=1.0, seed=0)
        cap = base_trace.machine.schedulable_bb
        assert all(j.bb <= cap for j in out)

    def test_deterministic(self, base_trace):
        a = expand_bb_requests(base_trace, fraction=0.5, min_request=1.0, seed=3)
        b = expand_bb_requests(base_trace, fraction=0.5, min_request=1.0, seed=3)
        assert [j.bb for j in a] == [j.bb for j in b]

    def test_other_fields_preserved(self, base_trace):
        out = expand_bb_requests(base_trace, fraction=0.5,
                                 min_request=1.0, seed=0)
        for a, b in zip(base_trace, out):
            assert (a.jid, a.submit_time, a.runtime, a.nodes) == \
                   (b.jid, b.submit_time, b.runtime, b.nodes)

    def test_invalid_fraction(self, base_trace):
        with pytest.raises(ConfigurationError):
            expand_bb_requests(base_trace, fraction=1.5, min_request=1.0)

    def test_invalid_range(self, base_trace):
        with pytest.raises(ConfigurationError):
            expand_bb_requests(base_trace, fraction=0.5,
                               min_request=100.0, max_request=50.0)


class TestBBSuite:
    def test_five_workloads(self, base_trace):
        suite = make_bb_suite(base_trace, seed=2)
        assert set(suite) == {f"Theta-{s}"
                              for s in ("Original", "S1", "S2", "S3", "S4")}

    def test_fractions(self, base_trace):
        suite = make_bb_suite(base_trace, seed=2)
        assert suite["Theta-S1"].bb_fraction() == pytest.approx(0.50, abs=0.01)
        assert suite["Theta-S2"].bb_fraction() == pytest.approx(0.75, abs=0.01)
        assert suite["Theta-S3"].bb_fraction() == pytest.approx(0.50, abs=0.01)
        assert suite["Theta-S4"].bb_fraction() == pytest.approx(0.75, abs=0.01)

    def test_s3_s4_have_larger_requests(self, base_trace):
        """Figure 5's key feature: S3/S4 distributions sit above S1/S2."""
        suite = make_bb_suite(base_trace, seed=2)
        assert np.median(suite["Theta-S3"].bb_requests()) > \
            np.median(suite["Theta-S1"].bb_requests())
        assert suite["Theta-S4"].total_bb_volume() > \
            suite["Theta-S2"].total_bb_volume()

    def test_volume_ordering(self, base_trace):
        """More requesting jobs → more aggregate volume (S2>S1, S4>S3)."""
        suite = make_bb_suite(base_trace, seed=2)
        assert suite["Theta-S2"].total_bb_volume() > \
            suite["Theta-S1"].total_bb_volume()
        assert suite["Theta-S4"].total_bb_volume() > \
            suite["Theta-S3"].total_bb_volume()

    def test_range_constants_sane(self):
        assert S12_RANGE_FRACTION[0] < S12_RANGE_FRACTION[1]
        assert S34_RANGE_FRACTION[0] < S34_RANGE_FRACTION[1]
        assert S34_RANGE_FRACTION[0] > S12_RANGE_FRACTION[0]


class TestAddSSDRequests:
    def test_all_jobs_get_requests(self, base_trace):
        out = add_ssd_requests(base_trace, small_fraction=0.8, seed=0)
        assert all(j.ssd >= 0.0 for j in out)
        assert any(j.ssd > 0.0 for j in out)

    def test_split_fractions(self, base_trace):
        out = add_ssd_requests(base_trace, small_fraction=0.8, seed=0)
        small = sum(1 for j in out if j.ssd <= 128.0)
        assert small / len(out) == pytest.approx(0.8, abs=0.05)

    def test_ranges(self, base_trace):
        out = add_ssd_requests(base_trace, small_fraction=0.5, seed=0)
        assert all(0.0 <= j.ssd <= 256.0 for j in out)

    def test_machine_gains_ssd_tiers(self, base_trace):
        out = add_ssd_requests(base_trace, small_fraction=0.5, seed=0)
        assert out.machine.ssd_tiers is not None
        tiers = dict(out.machine.ssd_tiers)
        assert set(tiers) == {128.0, 256.0}

    def test_invalid_fraction(self, base_trace):
        with pytest.raises(ConfigurationError):
            add_ssd_requests(base_trace, small_fraction=-0.1)


class TestSSDSuite:
    def test_three_workloads(self, base_trace):
        suite = make_ssd_suite(base_trace, seed=3)
        assert set(suite) == {"Theta-S5", "Theta-S6", "Theta-S7"}

    def test_s7_has_largest_requests(self, base_trace):
        """§5: S7 is 80 % large-SSD requests, S5 only 20 %."""
        suite = make_ssd_suite(base_trace, seed=3)
        mean5 = np.mean([j.ssd for j in suite["Theta-S5"]])
        mean7 = np.mean([j.ssd for j in suite["Theta-S7"]])
        assert mean7 > mean5
