"""Kiviat normalisation and polygon areas (Figures 13/14)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.kiviat import (
    AXES_SECTION4,
    AXES_SECTION5,
    axis_value,
    kiviat_areas,
    normalize,
    polygon_area,
)
from repro.experiments.runner import RunResult
from repro.simulator.metrics import MetricsSummary


def make_result(node=0.5, bb=0.5, wait=3600.0, slowdown=2.0,
                ssd=0.0, waste=0.0):
    return RunResult(
        workload="w", method="m",
        summary=MetricsSummary(node_usage=node, bb_usage=bb, avg_wait=wait,
                               avg_slowdown=slowdown, ssd_usage=ssd,
                               ssd_waste=waste),
        wait_by_size={}, wait_by_bb={}, wait_by_runtime={},
        makespan=1.0, selector_calls=0, mean_selector_time=0.0,
    )


class TestAxisValue:
    def test_direct_axis(self):
        assert axis_value(make_result(node=0.7), "node_usage") == 0.7

    def test_reciprocal_axis(self):
        assert axis_value(make_result(wait=100.0), "1/avg_wait") == pytest.approx(0.01)

    def test_reciprocal_of_zero_is_inf(self):
        assert math.isinf(axis_value(make_result(wait=0.0), "1/avg_wait"))


class TestNormalize:
    def test_best_is_one_worst_is_zero(self):
        per = {"a": make_result(node=0.9), "b": make_result(node=0.3)}
        out = normalize(per, axes=("node_usage",))
        assert out["a"]["node_usage"] == 1.0
        assert out["b"]["node_usage"] == 0.0

    def test_ties_all_one(self):
        per = {"a": make_result(), "b": make_result()}
        out = normalize(per, axes=AXES_SECTION4)
        for m in per:
            assert all(v == 1.0 for v in out[m].values())

    def test_reciprocal_axes_flip_order(self):
        fast = make_result(wait=10.0)
        slow = make_result(wait=100.0)
        out = normalize({"fast": fast, "slow": slow}, axes=("1/avg_wait",))
        assert out["fast"]["1/avg_wait"] == 1.0
        assert out["slow"]["1/avg_wait"] == 0.0

    def test_infinite_values_pin_to_one(self):
        out = normalize({"zero": make_result(wait=0.0),
                         "some": make_result(wait=100.0)},
                        axes=("1/avg_wait",))
        assert out["zero"]["1/avg_wait"] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize({}, axes=AXES_SECTION4)


class TestPolygonArea:
    def test_unit_square_polygon(self):
        # 4 axes all at radius 1: area = ½·sin(π/2)·4 = 2.
        assert polygon_area([1.0, 1.0, 1.0, 1.0]) == pytest.approx(2.0)

    def test_monotone_in_radii(self):
        small = polygon_area([0.5, 0.5, 0.5, 0.5])
        large = polygon_area([1.0, 1.0, 1.0, 1.0])
        assert large > small

    def test_degenerate_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            polygon_area([1.0, 1.0])

    def test_zero_polygon(self):
        assert polygon_area([0.0, 0.0, 0.0, 0.0]) == 0.0


class TestKiviatAreas:
    def test_dominant_method_has_larger_area(self):
        better = make_result(node=0.9, bb=0.9, wait=10.0, slowdown=1.5)
        worse = make_result(node=0.3, bb=0.3, wait=100.0, slowdown=5.0)
        areas = kiviat_areas({"better": better, "worse": worse}, AXES_SECTION4)
        assert areas["better"] > areas["worse"]

    def test_section5_axes(self):
        a = make_result(ssd=0.8, waste=0.1)
        b = make_result(ssd=0.2, waste=0.5)
        areas = kiviat_areas({"a": a, "b": b}, AXES_SECTION5)
        assert areas["a"] > areas["b"]
