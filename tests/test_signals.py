"""Signal-path behavior of the CLI, pinned end to end in subprocesses.

Operators script against these contracts: an un-checkpointed ``simulate``
turns SIGTERM into an orderly exit 130 with flushed telemetry; a
checkpointed one saves a resumable snapshot and exits ``128 + signum``
with a resume hint; ``serve`` drains on SIGTERM and abandons on SIGINT,
removing its socket either way.  The validator's journal mode is
exercised through the same subprocess surface CI uses.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.journal import RequestJournal

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
VALIDATOR = ROOT / "tools" / "validate_checkpoint.py"


def _env(scale):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env["REPRO_SCALE"] = scale
    return env


def _spawn(argv, scale):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=_env(scale), cwd=str(ROOT))


def _wait_for(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out after {timeout}s waiting for {what}")


class TestSimulateSignals:
    def test_sigterm_uncheckpointed_exits_130(self):
        """No checkpoint config: SIGTERM ⇒ KeyboardInterrupt path, 130.

        There is no externally observable "handlers installed" marker for
        an un-checkpointed run, so the delay before signalling is a
        ladder: a SIGTERM that lands before the handler (child killed,
        ``-SIGTERM``) retries with a longer wait, one that lands after
        the run finished retries with a shorter one.
        """
        for delay in (3.0, 1.5, 6.0):
            proc = _spawn(["simulate", "Theta-S4", "BBSched",
                           "--scale", "default"], scale="default")
            time.sleep(delay)
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=300)
            if proc.returncode == 130:
                assert "interrupted (no checkpoint written)" in err, err
                return
            assert proc.returncode in (-signal.SIGTERM, 0), (out, err)
        pytest.fail("SIGTERM never landed inside the handled window")

    def test_sigterm_checkpointed_saves_and_exits_143(self, tmp_path):
        """Checkpointed run: SIGTERM ⇒ snapshot on disk, exit 128+15.

        Deterministic: the first periodic checkpoint file doubles as the
        "handlers are installed, run is in flight" marker, so the signal
        always lands inside the graceful window.
        """
        ckpt = tmp_path / "sig.ckpt"
        proc = _spawn(["simulate", "Theta-S4", "BBSched", "--scale", "default",
                       "--checkpoint", str(ckpt), "--checkpoint-every", "0.25"],
                      scale="default")
        _wait_for(ckpt.exists, 120.0, "first periodic checkpoint")
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=300)
        assert proc.returncode == 128 + signal.SIGTERM, (out, err)
        assert "interrupted at sim-time" in err
        assert "--resume-from" in err
        check = subprocess.run(
            [sys.executable, str(VALIDATOR), str(ckpt),
             "--expect-workload", "Theta-S4", "--expect-method", "BBSched"],
            capture_output=True, text=True)
        assert check.returncode == 0, check.stderr

    def test_double_sigint_checkpointed_always_terminates(self, tmp_path):
        """Two rapid SIGINTs never leave a checkpointed run alive.

        Which exit message appears is a race the contract leaves open —
        a batch boundary between the two signals saves and exits
        orderly, otherwise the second signal force-quits — but both
        paths exit 130 promptly, which is what operators rely on.
        """
        ckpt = tmp_path / "dbl.ckpt"
        proc = _spawn(["simulate", "Theta-S4", "BBSched", "--scale", "default",
                       "--checkpoint", str(ckpt), "--checkpoint-every", "0.25"],
                      scale="default")
        _wait_for(ckpt.exists, 120.0, "first periodic checkpoint")
        proc.send_signal(signal.SIGINT)
        time.sleep(0.2)
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 130, (out, err)
        assert "interrupted" in err


class TestServeSignals:
    def _serve(self, tmp_path, extra=()):
        sock = tmp_path / "svc.sock"
        journal = tmp_path / "svc.jsonl"
        proc = _spawn(["serve", "--socket", str(sock),
                       "--journal", str(journal), "--workers", "1", *extra],
                      scale="smoke")
        _wait_for(sock.exists, 60.0, "daemon socket")
        return proc, sock

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        proc, sock = self._serve(tmp_path)
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, (out, err)
        assert not sock.exists()

    def test_sigint_abandons_and_exits_zero(self, tmp_path):
        proc, sock = self._serve(tmp_path)
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, (out, err)
        assert not sock.exists()


class TestValidatorJournalMode:
    def validate(self, *argv):
        return subprocess.run(
            [sys.executable, str(VALIDATOR), *map(str, argv)],
            capture_output=True, text=True)

    def make_journal(self, tmp_path):
        """One finished request, one accepted-but-pending."""
        journal = RequestJournal(tmp_path / "svc.jsonl")
        journal.append_request("r1", 1, {"workload": "Theta-S4"})
        journal.append_running("r1", 1)
        journal.append_done("r1", {"makespan": 1.0}, {"metrics": {}}, 0.5)
        journal.append_request("r2", 2, {"workload": "Theta-S4"})
        return journal

    def test_valid_journal_autodetected(self, tmp_path):
        journal = self.make_journal(tmp_path)
        proc = self.validate(journal.path)
        assert proc.returncode == 0, proc.stderr
        assert "(journal)" in proc.stdout
        assert "2 accepted" in proc.stdout
        assert "1 done" in proc.stdout
        assert "1 pending" in proc.stdout

    def test_require_complete_fails_on_pending(self, tmp_path):
        journal = self.make_journal(tmp_path)
        proc = self.validate(journal.path, "--require-complete")
        assert proc.returncode == 1
        assert "without a terminal record" in proc.stderr
        assert "r2" in proc.stderr

    def test_duplicate_accept_fails_even_on_tail(self, tmp_path):
        journal = self.make_journal(tmp_path)
        journal.append_request("r1", 3, {"workload": "Theta-S4"})
        proc = self.validate(journal.path)
        assert proc.returncode == 1
        assert "accepted twice" in proc.stderr

    def test_second_terminal_fails(self, tmp_path):
        journal = self.make_journal(tmp_path)
        journal.append_failed("r1", "late duplicate", code=500, attempts=1)
        proc = self.validate(journal.path)
        assert proc.returncode == 1
        assert "second terminal record" in proc.stderr

    def test_torn_tail_tolerated(self, tmp_path):
        journal = self.make_journal(tmp_path)
        path = Path(journal.path)
        path.write_bytes(path.read_bytes()[:-10])
        proc = self.validate(path)
        assert proc.returncode == 0, proc.stderr
        assert "torn tail dropped" in proc.stdout
        assert "1 accepted" in proc.stdout  # the damaged r2 line is gone

    def _ledger_record(self, payload: bytes) -> str:
        import base64
        import hashlib
        return json.dumps({
            "kind": "cell", "version": 1, "workload": "Theta-S4",
            "method": "Baseline", "scale": "smoke",
            "payload": base64.b64encode(payload).decode(),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        })

    def test_ledger_torn_tail_tolerated_interior_damage_fails(self, tmp_path):
        """A ledger cut mid-final-record passes; damage anywhere else fails."""
        path = tmp_path / "grid.jsonl"
        lines = [self._ledger_record(b"a"), self._ledger_record(b"bb")]
        path.write_text("\n".join(lines) + "\n")
        path.write_bytes(path.read_bytes()[:-10])  # tear the final record
        proc = self.validate(path, "--kind", "ledger")
        assert proc.returncode == 0, proc.stderr
        assert "truncated tail dropped" in proc.stdout
        torn = path.read_bytes()
        path.write_bytes(torn + b"\n" + self._ledger_record(b"c").encode()
                         + b"\n")  # damage is now mid-file
        proc = self.validate(path, "--kind", "ledger")
        assert proc.returncode == 1

    def test_done_payload_corruption_fails(self, tmp_path):
        journal = self.make_journal(tmp_path)
        path = Path(journal.path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[2])
        assert record["kind"] == "service-done"
        record["payload_sha256"] = "0" * 64
        lines[2] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        proc = self.validate(path)
        assert proc.returncode == 1
        assert "SHA-256 mismatch" in proc.stderr
