"""SolverWatchdog: budget enforcement, graceful degradation, breaker."""

import time

import pytest

from repro.errors import ConfigurationError, SolverTimeoutError
from repro.methods import NaiveSelector, make_selector
from repro.methods.base import Selector, SystemCapacity
from repro.policies import FCFS
from repro.resilience import (
    GreedyFallbackSelector,
    SolverWatchdog,
    scalar_fallback,
)
from repro.simulator.cluster import Cluster
from repro.simulator.engine import SchedulingEngine
from repro.simulator.job import Job, JobState
from repro.windows import WindowPolicy


class SlowSelector(Selector):
    """Takes every job that fits — after sleeping past any sane budget."""

    name = "Slow"

    def __init__(self, delay=0.2):
        super().__init__()
        self.delay = delay
        self.calls = 0

    def select(self, window, avail):
        self.calls += 1
        time.sleep(self.delay)
        return self.greedy_in_order(window, avail, range(len(window)))


def make_job(jid, submit=0.0, runtime=100.0, nodes=1, bb=0.0):
    return Job(jid=jid, submit_time=submit, runtime=runtime, walltime=runtime,
               nodes=nodes, bb=bb)


def window_and_avail(n=4):
    cluster = Cluster(nodes=10, bb_capacity=100.0)
    return [make_job(i, nodes=2) for i in range(n)], cluster.available()


def bound(wd):
    wd.bind(SystemCapacity(nodes=10, bb=100.0))
    return wd


class TestWatchdogDirect:
    def test_fast_inner_passes_through(self):
        wd = bound(SolverWatchdog(NaiveSelector(), budget=5.0))
        window, avail = window_and_avail()
        picks = wd.select(window, avail)
        assert picks
        assert wd.stats.calls == 1
        assert wd.stats.fallback_calls == 0
        assert wd.fallback_calls == 0

    def test_slow_inner_degrades_to_fallback(self):
        wd = bound(SolverWatchdog(SlowSelector(0.3), budget=0.02))
        window, avail = window_and_avail()
        picks = wd.select(window, avail)
        Selector.verify_feasible(window, avail, picks)
        assert picks == [0, 1, 2, 3]      # greedy fallback takes all fitting
        assert wd.stats.timeouts == 1
        assert wd.stats.fallback_calls == 1
        assert wd.stats.fallback_at == [1]

    def test_breaker_trips_and_bypasses_inner(self):
        inner = SlowSelector(0.3)
        wd = bound(SolverWatchdog(inner, budget=0.02, trip_after=2))
        window, avail = window_and_avail()
        for _ in range(5):
            wd.select(window, avail)
        assert wd.stats.tripped
        assert inner.calls == 2           # never invoked after the trip
        assert wd.stats.timeouts == 2
        assert wd.stats.fallback_calls == 5
        assert wd.stats.fallback_rate == 1.0

    def test_success_resets_consecutive_count(self):
        class Flaky(SlowSelector):
            def select(self, window, avail):
                self.calls += 1
                if self.calls % 2:        # odd calls are slow
                    time.sleep(self.delay)
                return []

        wd = bound(SolverWatchdog(Flaky(0.3), budget=0.05, trip_after=2))
        window, avail = window_and_avail()
        for _ in range(6):
            wd.select(window, avail)
        assert not wd.stats.tripped       # timeouts never consecutive
        assert wd.stats.timeouts == 3

    def test_no_fallback_raises(self):
        wd = bound(SolverWatchdog(SlowSelector(0.3), budget=0.02,
                                  fallback=None))
        window, avail = window_and_avail()
        with pytest.raises(SolverTimeoutError):
            wd.select(window, avail)

    def test_inner_errors_propagate(self):
        class Broken(Selector):
            name = "Broken"

            def select(self, window, avail):
                raise ValueError("boom")

        wd = bound(SolverWatchdog(Broken(), budget=5.0))
        window, avail = window_and_avail()
        with pytest.raises(ValueError):
            wd.select(window, avail)

    def test_scalar_fallback_is_usable(self):
        wd = bound(SolverWatchdog(SlowSelector(0.3), budget=0.02,
                                  fallback=scalar_fallback(seed=0)))
        window, avail = window_and_avail()
        picks = wd.select(window, avail)
        Selector.verify_feasible(window, avail, picks)
        assert wd.stats.fallback_calls == 1

    @pytest.mark.parametrize("kw", [
        {"budget": 0.0},
        {"budget": -1.0},
        {"budget": 1.0, "trip_after": 0},
        {"budget": 1.0, "fallback": "not a selector"},
    ])
    def test_invalid_configuration_rejected(self, kw):
        with pytest.raises(ConfigurationError):
            SolverWatchdog(NaiveSelector(), **kw)

    def test_name_advertises_guard(self):
        wd = SolverWatchdog(GreedyFallbackSelector(), budget=1.0)
        assert "watchdog" in wd.name


class TestWatchdogInEngine:
    def run_sim(self, selector, jobs):
        return SchedulingEngine(
            Cluster(nodes=10, bb_capacity=100.0),
            FCFS(),
            selector,
            WindowPolicy(size=5),
        ).run(jobs)

    def test_engine_records_fallbacks_and_completes(self):
        wd = SolverWatchdog(SlowSelector(0.3), budget=0.02, trip_after=2)
        jobs = [make_job(i, submit=float(i), nodes=3, bb=10.0)
                for i in range(10)]
        res = self.run_sim(wd, jobs)
        assert all(j.state is JobState.COMPLETED for j in res.jobs)
        assert res.stats.fallback_calls > 0
        assert res.stats.fallback_calls == wd.stats.fallback_calls
        assert 0.0 < res.stats.fallback_rate <= 1.0

    def test_no_fallbacks_recorded_without_watchdog(self):
        jobs = [make_job(i, submit=float(i), nodes=3) for i in range(5)]
        res = self.run_sim(NaiveSelector(), jobs)
        assert res.stats.fallback_calls == 0
        assert res.stats.fallback_rate == 0.0

    def test_stats_partition_not_double_counted(self):
        # Regression for the selected/forced partition: jobs started through
        # the starvation bound or a watchdog fallback count exactly once.
        wd = SolverWatchdog(
            make_selector("Constrained_CPU", generations=10, seed=0),
            budget=10.0)
        jobs = [make_job(1, nodes=2, runtime=50.0, bb=90.0)]
        jobs += [make_job(10 + i, submit=float(i), nodes=2, runtime=30.0,
                          bb=20.0) for i in range(30)]
        res = SchedulingEngine(
            Cluster(nodes=10, bb_capacity=100.0),
            FCFS(),
            wd,
            WindowPolicy(size=3, starvation_bound=5),
        ).run(jobs)
        assert res.stats.forced_jobs > 0
        total = (res.stats.selected_jobs + res.stats.forced_jobs +
                 res.stats.backfilled_jobs)
        assert total == len(jobs)

    def test_watchdog_mean_selector_time_includes_fallbacks(self):
        wd = SolverWatchdog(SlowSelector(0.3), budget=0.02, trip_after=1)
        jobs = [make_job(i, submit=float(i), nodes=3) for i in range(6)]
        res = self.run_sim(wd, jobs)
        assert res.stats.selector_calls == wd.stats.calls
        # After the trip every call is a cheap fallback, so the mean sits
        # well below the inner selector's 0.3 s.
        assert res.stats.mean_selector_time < 0.3
