"""Deterministic RNG handling."""

import numpy as np
import pytest

from repro.rng import DEFAULT_SEED, make_rng, split_rng


class TestMakeRng:
    def test_int_seed_is_deterministic(self):
        a = make_rng(42).integers(0, 1000, 10)
        b = make_rng(42).integers(0, 1000, 10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 1_000_000, 20)
        b = make_rng(2).integers(0, 1_000_000, 20)
        assert (a != b).any()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert make_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(5)
        a = make_rng(ss).integers(0, 1000, 5)
        b = make_rng(np.random.SeedSequence(5)).integers(0, 1000, 5)
        assert (a == b).all()

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSplitRng:
    def test_children_count(self):
        assert len(split_rng(3, 5)) == 5

    def test_children_independent_streams(self):
        a, b = split_rng(3, 2)
        assert (a.integers(0, 1 << 30, 10) != b.integers(0, 1 << 30, 10)).any()

    def test_deterministic(self):
        a1, _ = split_rng(9, 2)
        a2, _ = split_rng(9, 2)
        assert (a1.integers(0, 1 << 30, 10) == a2.integers(0, 1 << 30, 10)).all()

    def test_salt_changes_streams(self):
        (a,) = split_rng(9, 1, salt=0)
        (b,) = split_rng(9, 1, salt=1)
        assert (a.integers(0, 1 << 30, 10) != b.integers(0, 1 << 30, 10)).any()

    def test_none_seed_uses_default(self):
        (a,) = split_rng(None, 1)
        (b,) = split_rng(DEFAULT_SEED, 1)
        assert (a.integers(0, 1 << 30, 10) == b.integers(0, 1 << 30, 10)).all()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            split_rng(1, -1)

    def test_generator_seed_split(self):
        gen = np.random.default_rng(4)
        kids = split_rng(gen, 3)
        assert len(kids) == 3
