"""Unit-conversion helpers."""

import pytest

from repro.units import (
    DAYS,
    GB,
    HOURS,
    PB,
    TB,
    fmt_duration,
    fmt_storage,
    gb_to_tb,
    hours_to_seconds,
    seconds_to_hours,
    tb_to_gb,
)


class TestStorageUnits:
    def test_tb_is_1024_gb(self):
        assert TB == 1024.0 * GB

    def test_pb_is_1024_tb(self):
        assert PB == 1024.0 * TB

    def test_round_trip_gb_tb(self):
        assert gb_to_tb(tb_to_gb(3.5)) == pytest.approx(3.5)

    def test_paper_cori_bb(self):
        # 1.8 PB in GB, the Cori DataWarp capacity from Table 2.
        assert 1.8 * PB == pytest.approx(1_887_436.8)


class TestTimeUnits:
    def test_hours(self):
        assert HOURS == 3600.0

    def test_days(self):
        assert DAYS == 24 * HOURS

    def test_round_trip(self):
        assert seconds_to_hours(hours_to_seconds(7.25)) == pytest.approx(7.25)


class TestFormatting:
    def test_fmt_storage_gb(self):
        assert fmt_storage(512.0) == "512GB"

    def test_fmt_storage_tb(self):
        assert fmt_storage(2 * TB) == "2.0TB"

    def test_fmt_storage_pb(self):
        assert fmt_storage(1.8 * PB) == "1.80PB"

    def test_fmt_duration_seconds(self):
        assert fmt_duration(12.0) == "12.0s"

    def test_fmt_duration_minutes(self):
        assert fmt_duration(90.0) == "1.5m"

    def test_fmt_duration_hours(self):
        assert fmt_duration(5400.0) == "1.5h"

    def test_fmt_duration_days(self):
        assert fmt_duration(36 * HOURS) == "1.5d"
