"""Window-based scheduling: extraction, dependency gating, starvation."""

import pytest

from repro.errors import ConfigurationError
from repro.simulator.job import Job
from repro.windows import Window, WindowPolicy


def make_job(jid, deps=(), age=0):
    job = Job(jid=jid, submit_time=float(jid), runtime=10.0, walltime=10.0,
              nodes=1, deps=frozenset(deps))
    job.window_age = age
    return job


class TestConstruction:
    def test_defaults(self):
        wp = WindowPolicy()
        assert wp.size == 20
        assert wp.starvation_bound == 50

    def test_bad_size(self):
        with pytest.raises(ConfigurationError):
            WindowPolicy(size=0)

    def test_bad_bound(self):
        with pytest.raises(ConfigurationError):
            WindowPolicy(starvation_bound=0)

    def test_none_bound_allowed(self):
        assert WindowPolicy(starvation_bound=None).starvation_bound is None


class TestExtract:
    def test_takes_window_size_jobs(self):
        queue = [make_job(i) for i in range(10)]
        window = WindowPolicy(size=4).extract(queue, completed=set())
        assert [j.jid for j in window.jobs] == [0, 1, 2, 3]

    def test_shorter_queue(self):
        queue = [make_job(i) for i in range(2)]
        window = WindowPolicy(size=4).extract(queue, completed=set())
        assert len(window) == 2

    def test_dependency_gating(self):
        queue = [make_job(0), make_job(1, deps={99}), make_job(2)]
        window = WindowPolicy(size=4).extract(queue, completed=set())
        assert [j.jid for j in window.jobs] == [0, 2]

    def test_completed_dependency_admits(self):
        queue = [make_job(1, deps={99})]
        window = WindowPolicy(size=4).extract(queue, completed={99})
        assert [j.jid for j in window.jobs] == [1]

    def test_gated_jobs_do_not_consume_slots(self):
        queue = [make_job(0, deps={99})] + [make_job(i) for i in range(1, 6)]
        window = WindowPolicy(size=5).extract(queue, completed=set())
        assert [j.jid for j in window.jobs] == [1, 2, 3, 4, 5]

    def test_forced_detection(self):
        queue = [make_job(0, age=50), make_job(1, age=3)]
        window = WindowPolicy(size=4, starvation_bound=50).extract(queue, set())
        assert window.forced == (0,)

    def test_no_forced_when_disabled(self):
        queue = [make_job(0, age=1000)]
        window = WindowPolicy(size=4, starvation_bound=None).extract(queue, set())
        assert window.forced == ()

    def test_iterable(self):
        queue = [make_job(i) for i in range(3)]
        window = WindowPolicy(size=3).extract(queue, set())
        assert [j.jid for j in window] == [0, 1, 2]


class TestRecordOutcome:
    def test_selected_resets_age(self):
        jobs = [make_job(0, age=5), make_job(1, age=5)]
        window = Window(jobs=tuple(jobs))
        WindowPolicy(size=2).record_outcome(window, selected={0})
        assert jobs[0].window_age == 0
        assert jobs[1].window_age == 6

    def test_all_unselected_age(self):
        jobs = [make_job(i, age=i) for i in range(3)]
        window = Window(jobs=tuple(jobs))
        WindowPolicy(size=3).record_outcome(window, selected=set())
        assert [j.window_age for j in jobs] == [1, 2, 3]

    def test_starvation_cycle(self):
        """A job passed over ``bound`` times becomes forced next extraction."""
        wp = WindowPolicy(size=2, starvation_bound=3)
        job = make_job(0)
        for _ in range(3):
            window = wp.extract([job], set())
            assert window.forced == ()
            wp.record_outcome(window, selected=set())
        window = wp.extract([job], set())
        assert window.forced == (0,)
