"""Heterogeneous local-SSD pool: tiers, allocation preference, waste."""

import pytest

from repro.errors import AllocationError, ConfigurationError
from repro.simulator.ssd_pool import SSDAssignment, SSDPool


class TestConstruction:
    def test_basic(self):
        pool = SSDPool({128.0: 10, 256.0: 10})
        assert pool.total_nodes == 20
        assert pool.free_nodes == 20
        assert pool.capacities == (128.0, 256.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            SSDPool({})

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            SSDPool({-1.0: 5})

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            SSDPool({128.0: -5})

    def test_int_capacities_coerced_to_float(self):
        pool = SSDPool({128: 5})
        assert pool.capacities == (128.0,)
        assert pool.total_nodes == 5


class TestQueries:
    def test_free_at_least(self):
        pool = SSDPool({128.0: 10, 256.0: 6})
        assert pool.free_at_least(0.0) == 16
        assert pool.free_at_least(128.0) == 16
        assert pool.free_at_least(129.0) == 6
        assert pool.free_at_least(257.0) == 0

    def test_can_fit(self):
        pool = SSDPool({128.0: 4, 256.0: 2})
        assert pool.can_fit(6, 0.0)
        assert pool.can_fit(2, 200.0)
        assert not pool.can_fit(3, 200.0)
        assert not pool.can_fit(7, 0.0)


class TestAllocation:
    def test_prefers_smallest_qualifying_tier(self):
        pool = SSDPool({128.0: 4, 256.0: 4})
        a = pool.allocate(3, 64.0)
        assert dict(a.per_tier) == {128.0: 3}
        assert a.waste == pytest.approx((128.0 - 64.0) * 3)

    def test_spills_to_larger_tier(self):
        pool = SSDPool({128.0: 2, 256.0: 4})
        a = pool.allocate(5, 100.0)
        assert dict(a.per_tier) == {128.0: 2, 256.0: 3}
        assert a.waste == pytest.approx(28.0 * 2 + 156.0 * 3)

    def test_large_request_uses_only_qualifying(self):
        pool = SSDPool({128.0: 4, 256.0: 4})
        a = pool.allocate(2, 200.0)
        assert dict(a.per_tier) == {256.0: 2}
        assert pool.free_at_least(129.0) == 2

    def test_overflow_raises_and_leaves_pool_unchanged(self):
        pool = SSDPool({128.0: 2})
        with pytest.raises(AllocationError):
            pool.allocate(3, 0.0)
        assert pool.free_nodes == 2

    def test_nonpositive_count_rejected(self):
        pool = SSDPool({128.0: 2})
        with pytest.raises(AllocationError):
            pool.allocate(0, 0.0)

    def test_node_count_and_capacities(self):
        pool = SSDPool({128.0: 1, 256.0: 2})
        a = pool.allocate(3, 0.0)
        assert a.node_count == 3
        assert sorted(a.capacities()) == [128.0, 256.0, 256.0]


class TestRelease:
    def test_release_restores(self):
        pool = SSDPool({128.0: 4, 256.0: 4})
        a = pool.allocate(5, 64.0)
        pool.release(a)
        assert pool.free_nodes == 8
        assert pool.free_per_tier() == pool.total_per_tier()

    def test_release_unknown_tier_rejected(self):
        pool = SSDPool({128.0: 4})
        bogus = SSDAssignment(per_tier=((512.0, 1),), waste=0.0)
        with pytest.raises(AllocationError):
            pool.release(bogus)

    def test_over_release_rejected(self):
        pool = SSDPool({128.0: 4})
        bogus = SSDAssignment(per_tier=((128.0, 1),), waste=0.0)
        with pytest.raises(AllocationError):
            pool.release(bogus)


class TestPlanWaste:
    def test_matches_allocate(self):
        pool = SSDPool({128.0: 2, 256.0: 4})
        planned = pool.plan_waste(5, 100.0)
        actual = pool.allocate(5, 100.0)
        assert planned == pytest.approx(actual.waste)

    def test_plan_does_not_mutate(self):
        pool = SSDPool({128.0: 2, 256.0: 4})
        pool.plan_waste(5, 100.0)
        assert pool.free_nodes == 6

    def test_plan_unfit_raises(self):
        pool = SSDPool({128.0: 2})
        with pytest.raises(AllocationError):
            pool.plan_waste(1, 200.0)
