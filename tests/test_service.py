"""Simulation service: protocol, admission, journal, pool self-healing."""

import asyncio
import os
import threading
import time

import pytest

from repro.errors import CheckpointError, ServiceError
from repro.service import (
    AdmissionQueue,
    RequestJournal,
    ServiceClient,
    ServiceConfig,
    ServiceDaemon,
    decode_message,
    encode_message,
    validate_request,
)
from repro.service.journal import KIND_DONE
from repro.service.pool import deterministic_jitter
from repro.service.queue import make_policy

SMOKE = {"workload": "Cori-S1", "method": "Baseline", "scale": "smoke"}


# --- protocol ------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip(self):
        msg = {"op": "ping", "n": 1}
        assert decode_message(encode_message(msg)) == msg

    def test_malformed_json_is_400(self):
        with pytest.raises(ServiceError) as excinfo:
            decode_message(b"{nope\n")
        assert excinfo.value.code == 400

    def test_non_object_is_400(self):
        with pytest.raises(ServiceError):
            decode_message(b"[1, 2]\n")

    def test_unknown_op(self):
        with pytest.raises(ServiceError) as excinfo:
            validate_request({"op": "launch_missiles"})
        assert excinfo.value.code == 400

    def test_submit_requires_known_workload(self):
        with pytest.raises(ServiceError) as excinfo:
            validate_request({"op": "submit",
                              "params": {"workload": "nope", "method": "Baseline"}})
        assert "workload" in str(excinfo.value)

    def test_submit_requires_known_method(self):
        with pytest.raises(ServiceError):
            validate_request({"op": "submit",
                              "params": {"workload": "Cori-S1", "method": "nope"}})

    def test_submit_normalizes_hints(self):
        out = validate_request({"op": "submit", "params": dict(SMOKE)})
        assert out["params"]["nodes_hint"] == 1
        assert out["params"]["walltime_hint"] == 3600.0

    def test_submit_rejects_bad_chaos(self):
        with pytest.raises(ServiceError):
            validate_request({"op": "submit",
                              "params": {**SMOKE, "chaos": {"explode": True}}})

    def test_submit_accepts_chaos(self):
        out = validate_request({"op": "submit",
                                "params": {**SMOKE,
                                           "chaos": {"crash_attempts": 1}}})
        assert out["params"]["chaos"] == {"crash_attempts": 1}

    def test_status_requires_id(self):
        with pytest.raises(ServiceError):
            validate_request({"op": "status"})


# --- admission queue -----------------------------------------------------------
class TestAdmissionQueue:
    def test_fcfs_order(self):
        q = AdmissionQueue(make_policy("fcfs"), high_water=8)
        for i in range(3):
            q.offer(f"r{i}", {"nodes_hint": 1, "walltime_hint": 60.0})
        assert [q.take()[0] for _ in range(3)] == ["r0", "r1", "r2"]

    def test_wfp_prefers_large_requests(self):
        clock = [0.0]
        q = AdmissionQueue(make_policy("wfp"), high_water=8,
                           clock=lambda: clock[0])
        q.offer("small", {"nodes_hint": 1, "walltime_hint": 60.0})
        q.offer("big", {"nodes_hint": 64, "walltime_hint": 60.0})
        clock[0] = 30.0  # both waited; WFP's nodes factor dominates
        assert q.take()[0] == "big"

    def test_shed_past_high_water(self):
        q = AdmissionQueue(make_policy("fcfs"), high_water=2)
        q.offer("a", {})
        q.offer("b", {})
        with pytest.raises(ServiceError) as excinfo:
            q.offer("c", {})
        assert excinfo.value.code == 429
        assert q.shed == 1

    def test_exempt_bypasses_high_water(self):
        q = AdmissionQueue(make_policy("fcfs"), high_water=1)
        q.offer("a", {})
        q.offer("recovered", {}, exempt=True)  # no raise
        assert q.depth == 2

    def test_degrade_ladder(self):
        q = AdmissionQueue(make_policy("fcfs"), high_water=10)
        assert q.degrade_level() == 0
        for i in range(5):
            q.offer(f"r{i}", {})
        assert q.degrade_level() == 1
        for i in range(4):
            q.offer(f"s{i}", {})
        assert q.degrade_level() == 2

    def test_take_empty_raises(self):
        q = AdmissionQueue(make_policy("fcfs"), high_water=2)
        with pytest.raises(ServiceError):
            q.take()


# --- request journal -----------------------------------------------------------
class TestRequestJournal:
    def test_lifecycle_replay(self, tmp_path):
        j = RequestJournal(tmp_path / "svc.jsonl")
        j.append_request("r1", 1, dict(SMOKE))
        j.append_request("r2", 2, dict(SMOKE))
        j.append_running("r1", 1)
        j.append_done("r1", {"fake": "result"}, {"makespan": 1.0}, 0.5)
        view = j.load(verify_payloads=True)
        assert view.state("r1") == "done"
        assert view.state("r2") == "queued"
        assert [r["id"] for r in view.pending()] == ["r2"]
        assert view.seq_max == 2
        assert view.result("r1") == {"fake": "result"}

    def test_duplicate_terminal_is_exactly_once_violation(self, tmp_path):
        j = RequestJournal(tmp_path / "svc.jsonl")
        j.append_request("r1", 1, {})
        j.append_done("r1", 1, {}, 0.1)
        j.append_failed("r1", "late loser", 500, 3)
        with pytest.raises(CheckpointError, match="exactly-once"):
            j.load()

    def test_duplicate_accept_raises(self, tmp_path):
        j = RequestJournal(tmp_path / "svc.jsonl")
        j.append_request("r1", 1, {})
        j.append_request("r1", 2, {})
        with pytest.raises(CheckpointError, match="accepted twice"):
            j.load()

    def test_orphan_lifecycle_record_raises(self, tmp_path):
        j = RequestJournal(tmp_path / "svc.jsonl")
        j.append_running("ghost", 1)
        j.append_request("r1", 1, {})  # ghost is now an interior record
        with pytest.raises(CheckpointError, match="never accepted"):
            j.load()

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "svc.jsonl"
        j = RequestJournal(path)
        j.append_request("r1", 1, {})
        j.append_done("r1", 42, {}, 0.1)
        data = path.read_bytes()
        path.write_bytes(data[:-25])  # SIGKILL mid-append
        view = j.load()
        assert view.dropped_tail == 1
        assert view.state("r1") == "queued"  # the done record was torn

    def test_attempts_tracked(self, tmp_path):
        j = RequestJournal(tmp_path / "svc.jsonl")
        j.append_request("r1", 1, {})
        j.append_running("r1", 1)
        j.append_running("r1", 2)
        view = j.load()
        assert view.attempts["r1"] == 2
        assert view.state("r1") == "running"

    def test_quarantine_is_terminal(self, tmp_path):
        j = RequestJournal(tmp_path / "svc.jsonl")
        j.append_request("r1", 1, {})
        j.append_quarantined("r1", "poison", 2)
        view = j.load()
        assert view.state("r1") == "quarantined"
        assert view.pending() == []


class TestDeterministicJitter:
    def test_stable_and_bounded(self):
        a = deterministic_jitter("r000001", 1)
        assert a == deterministic_jitter("r000001", 1)
        assert 0.0 <= a < 1.0
        assert a != deterministic_jitter("r000001", 2)


# --- daemon end-to-end ---------------------------------------------------------
class DaemonHarness:
    """Runs a ServiceDaemon on a background thread for one test."""

    def __init__(self, tmp_path, **overrides):
        self.socket_path = str(tmp_path / "svc.sock")
        self.journal_path = str(tmp_path / "svc.jsonl")
        kwargs = dict(socket_path=self.socket_path,
                      journal_path=self.journal_path,
                      workers=1, high_water=8, retries=2,
                      quarantine_after=2)
        kwargs.update(overrides)
        self.daemon = ServiceDaemon(ServiceConfig(**kwargs))
        self.client = ServiceClient(self.socket_path, timeout=10.0)
        self._thread = None

    def __enter__(self):
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.daemon.serve()), daemon=True)
        self._thread.start()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if os.path.exists(self.socket_path) and self.client.alive():
                return self
            time.sleep(0.02)
        raise RuntimeError("daemon did not come up")

    def __exit__(self, *exc):
        try:
            self.client.shutdown(mode="now")
        except ServiceError:
            pass
        self._thread.join(15.0)


@pytest.fixture(autouse=True)
def _smoke_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")


class TestDaemonEndToEnd:
    def test_submit_wait_done(self, tmp_path):
        with DaemonHarness(tmp_path) as h:
            accepted = h.client.submit(**SMOKE)
            assert accepted["state"] == "queued"
            status = h.client.wait(accepted["id"], timeout=120.0)
            assert status["state"] == "done"
            assert status["summary"]["metrics"]["node_usage"] > 0
            # The journal recorded exactly one terminal record, payload intact.
            view = RequestJournal(h.journal_path).load(verify_payloads=True)
            assert view.terminal[accepted["id"]]["kind"] == KIND_DONE

    def test_unknown_id_is_404(self, tmp_path):
        with DaemonHarness(tmp_path) as h:
            with pytest.raises(ServiceError) as excinfo:
                h.client.status("r999999")
            assert excinfo.value.code == 404

    def test_stats_reports_states(self, tmp_path):
        with DaemonHarness(tmp_path) as h:
            accepted = h.client.submit(**SMOKE)
            h.client.wait(accepted["id"], timeout=120.0)
            stats = h.client.stats()
            assert stats["states"].get("done") == 1
            assert stats["policy"] == "fcfs"
            assert "service.accepted" in stats["metrics"]["counters"]

    def test_malformed_line_gets_400_not_disconnect(self, tmp_path):
        import socket as socketlib
        with DaemonHarness(tmp_path) as h:
            with socketlib.socket(socketlib.AF_UNIX,
                                  socketlib.SOCK_STREAM) as sock:
                sock.settimeout(5.0)
                sock.connect(h.socket_path)
                sock.sendall(b"not json\n")
                first = sock.makefile("rb").readline()
                assert b'"code": 400' in first or b'"code":400' in first

    def test_crash_once_recovers_and_completes(self, tmp_path):
        # A worker SIGKILL mid-task breaks the pool; the request is
        # requeued for free, re-run, and completes — with the crash
        # visible in the metrics, not in the outcome.
        with DaemonHarness(tmp_path, allow_chaos=True) as h:
            accepted = h.client.submit(chaos={"crash_attempts": 1}, **SMOKE)
            status = h.client.wait(accepted["id"], timeout=120.0)
            assert status["state"] == "done"
            counters = h.client.stats()["metrics"]["counters"]
            assert counters.get("service.pool_rebuilds", 0) >= 1

    def test_poison_request_is_quarantined(self, tmp_path):
        # A request that crashes its worker on *every* attempt must be
        # quarantined after `quarantine_after` isolated convictions, and
        # must not poison a healthy request sharing the service.
        with DaemonHarness(tmp_path, allow_chaos=True, workers=2,
                           quarantine_after=2) as h:
            poison = h.client.submit(chaos={"crash_attempts": -1}, **SMOKE)
            healthy = h.client.submit(**SMOKE)
            outcomes = h.client.wait_all(
                [poison["id"], healthy["id"]], timeout=180.0)
            assert outcomes[poison["id"]]["state"] == "quarantined"
            assert outcomes[healthy["id"]]["state"] == "done"
            view = RequestJournal(h.journal_path).load()
            assert view.state(poison["id"]) == "quarantined"

    def test_hung_worker_is_killed_and_retried(self, tmp_path):
        # The request hangs (sleeps far past the deadline) on attempt 1;
        # the supervisor SIGKILLs the claimed worker and the retry
        # completes clean.
        with DaemonHarness(tmp_path, allow_chaos=True,
                           deadline=2.0, retries=2) as h:
            accepted = h.client.submit(
                chaos={"hang_attempts": 1, "hang_seconds": 120.0}, **SMOKE)
            status = h.client.wait(accepted["id"], timeout=120.0)
            assert status["state"] == "done"
            counters = h.client.stats()["metrics"]["counters"]
            assert counters.get("service.hangs", 0) >= 1

    def test_shed_past_high_water(self, tmp_path):
        # One worker wedged on a hang + high_water=2 → the third submit
        # is shed with a 429 while the queue is full.
        with DaemonHarness(tmp_path, allow_chaos=True, workers=1,
                           high_water=2, deadline=None) as h:
            h.client.submit(
                chaos={"hang_attempts": -1, "hang_seconds": 600.0}, **SMOKE)
            time.sleep(0.3)  # let the hang occupy the only worker
            h.client.submit(**SMOKE)
            h.client.submit(**SMOKE)
            with pytest.raises(ServiceError) as excinfo:
                h.client.submit(**SMOKE)
            assert excinfo.value.code == 429
            assert h.client.stats()["metrics"]["counters"]["service.shed"] == 1

    def test_draining_daemon_rejects_submits(self, tmp_path):
        with DaemonHarness(tmp_path) as h:
            accepted = h.client.submit(**SMOKE)
            h.client.wait(accepted["id"], timeout=120.0)
            h.client.shutdown(mode="graceful")
            with pytest.raises(ServiceError) as excinfo:
                h.client.submit(**SMOKE)
            assert excinfo.value.code == 503


class TestRecovery:
    def test_unfinished_requests_resume_on_restart(self, tmp_path):
        # Simulate a daemon that accepted work and was SIGKILL'd before
        # running it: the journal holds accepted records with no terminal
        # records.  A fresh daemon must replay and finish them unasked.
        journal = RequestJournal(tmp_path / "svc.jsonl")
        journal.append_request("r000001", 1, dict(SMOKE))
        journal.append_request("r000002", 2, dict(SMOKE))
        with DaemonHarness(tmp_path, workers=2) as h:
            assert h.daemon.recovered == 2
            outcomes = h.client.wait_all(["r000001", "r000002"], timeout=180.0)
            assert {s["state"] for s in outcomes.values()} == {"done"}
        view = journal.load(verify_payloads=True)
        assert set(view.terminal) == {"r000001", "r000002"}
        assert view.pending() == []

    def test_finished_requests_are_not_recomputed(self, tmp_path):
        # A result journaled before the kill is served from the journal;
        # restart must not produce a second terminal record for it.
        journal = RequestJournal(tmp_path / "svc.jsonl")
        journal.append_request("r000001", 1, dict(SMOKE))
        journal.append_done("r000001", {"sentinel": 7}, {"metrics": {}}, 0.1)
        with DaemonHarness(tmp_path) as h:
            assert h.daemon.recovered == 0
            status = h.client.status("r000001")
            assert status["state"] == "done"
        view = journal.load()
        assert view.terminal["r000001"]["kind"] == KIND_DONE
        assert view.result("r000001") == {"sentinel": 7}

    def test_new_ids_continue_after_recovered_sequence(self, tmp_path):
        journal = RequestJournal(tmp_path / "svc.jsonl")
        journal.append_request("r000007", 7, dict(SMOKE))
        journal.append_failed("r000007", "old failure", 500, 3)
        with DaemonHarness(tmp_path) as h:
            accepted = h.client.submit(**SMOKE)
            assert accepted["id"] == "r000008"
            h.client.wait(accepted["id"], timeout=120.0)


class TestDegradation:
    def test_pressure_caps_generations(self, tmp_path):
        daemon = ServiceDaemon(ServiceConfig(
            socket_path=str(tmp_path / "s.sock"), high_water=4))
        for i in range(4):
            daemon.queue.offer(f"r{i}", {})
        assert daemon.queue.degrade_level() == 2
        effective, level, overrides = daemon._degrade(dict(SMOKE))
        assert level == 2
        assert effective["generations"] == overrides["generations"]
        assert effective["generations"] >= 1
        assert effective["watchdog_budget"] == 1.0

    def test_no_pressure_no_overrides(self, tmp_path):
        daemon = ServiceDaemon(ServiceConfig(
            socket_path=str(tmp_path / "s.sock"), high_water=4))
        effective, level, overrides = daemon._degrade(dict(SMOKE))
        assert (effective, level, overrides) == (dict(SMOKE), 0, {})

    def test_degrade_disabled(self, tmp_path):
        daemon = ServiceDaemon(ServiceConfig(
            socket_path=str(tmp_path / "s.sock"), high_water=4,
            degrade=False))
        for i in range(4):
            daemon.queue.offer(f"r{i}", {})
        _, level, _ = daemon._degrade(dict(SMOKE))
        assert level == 0
