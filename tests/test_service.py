"""Simulation service: protocol, admission, journal, pool self-healing."""

import asyncio
import os
import threading
import time

import pytest

from repro.errors import CheckpointError, ServiceError
from repro.service import (
    AdmissionQueue,
    RequestJournal,
    ServiceClient,
    ServiceConfig,
    ServiceDaemon,
    decode_message,
    encode_message,
    validate_request,
)
from repro.service.journal import KIND_DONE
from repro.service.pool import deterministic_jitter
from repro.service.queue import make_policy

SMOKE = {"workload": "Cori-S1", "method": "Baseline", "scale": "smoke"}


# --- protocol ------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip(self):
        msg = {"op": "ping", "n": 1}
        assert decode_message(encode_message(msg)) == msg

    def test_malformed_json_is_400(self):
        with pytest.raises(ServiceError) as excinfo:
            decode_message(b"{nope\n")
        assert excinfo.value.code == 400

    def test_non_object_is_400(self):
        with pytest.raises(ServiceError):
            decode_message(b"[1, 2]\n")

    def test_unknown_op(self):
        with pytest.raises(ServiceError) as excinfo:
            validate_request({"op": "launch_missiles"})
        assert excinfo.value.code == 400

    def test_submit_requires_known_workload(self):
        with pytest.raises(ServiceError) as excinfo:
            validate_request({"op": "submit",
                              "params": {"workload": "nope", "method": "Baseline"}})
        assert "workload" in str(excinfo.value)

    def test_submit_requires_known_method(self):
        with pytest.raises(ServiceError):
            validate_request({"op": "submit",
                              "params": {"workload": "Cori-S1", "method": "nope"}})

    def test_submit_normalizes_hints(self):
        out = validate_request({"op": "submit", "params": dict(SMOKE)})
        assert out["params"]["nodes_hint"] == 1
        assert out["params"]["walltime_hint"] == 3600.0

    def test_submit_rejects_bad_chaos(self):
        with pytest.raises(ServiceError):
            validate_request({"op": "submit",
                              "params": {**SMOKE, "chaos": {"explode": True}}})

    def test_submit_accepts_chaos(self):
        out = validate_request({"op": "submit",
                                "params": {**SMOKE,
                                           "chaos": {"crash_attempts": 1}}})
        assert out["params"]["chaos"] == {"crash_attempts": 1}

    def test_status_requires_id(self):
        with pytest.raises(ServiceError):
            validate_request({"op": "status"})


# --- admission queue -----------------------------------------------------------
class TestAdmissionQueue:
    def test_fcfs_order(self):
        q = AdmissionQueue(make_policy("fcfs"), high_water=8)
        for i in range(3):
            q.offer(f"r{i}", {"nodes_hint": 1, "walltime_hint": 60.0})
        assert [q.take()[0] for _ in range(3)] == ["r0", "r1", "r2"]

    def test_wfp_prefers_large_requests(self):
        clock = [0.0]
        q = AdmissionQueue(make_policy("wfp"), high_water=8,
                           clock=lambda: clock[0])
        q.offer("small", {"nodes_hint": 1, "walltime_hint": 60.0})
        q.offer("big", {"nodes_hint": 64, "walltime_hint": 60.0})
        clock[0] = 30.0  # both waited; WFP's nodes factor dominates
        assert q.take()[0] == "big"

    def test_shed_past_high_water(self):
        q = AdmissionQueue(make_policy("fcfs"), high_water=2)
        q.offer("a", {})
        q.offer("b", {})
        with pytest.raises(ServiceError) as excinfo:
            q.offer("c", {})
        assert excinfo.value.code == 429
        assert q.shed == 1

    def test_exempt_bypasses_high_water(self):
        q = AdmissionQueue(make_policy("fcfs"), high_water=1)
        q.offer("a", {})
        q.offer("recovered", {}, exempt=True)  # no raise
        assert q.depth == 2

    def test_degrade_ladder(self):
        q = AdmissionQueue(make_policy("fcfs"), high_water=10)
        assert q.degrade_level() == 0
        for i in range(5):
            q.offer(f"r{i}", {})
        assert q.degrade_level() == 1
        for i in range(4):
            q.offer(f"s{i}", {})
        assert q.degrade_level() == 2

    def test_take_empty_raises(self):
        q = AdmissionQueue(make_policy("fcfs"), high_water=2)
        with pytest.raises(ServiceError):
            q.take()


# --- request journal -----------------------------------------------------------
class TestRequestJournal:
    def test_lifecycle_replay(self, tmp_path):
        j = RequestJournal(tmp_path / "svc.jsonl")
        j.append_request("r1", 1, dict(SMOKE))
        j.append_request("r2", 2, dict(SMOKE))
        j.append_running("r1", 1)
        j.append_done("r1", {"fake": "result"}, {"makespan": 1.0}, 0.5)
        view = j.load(verify_payloads=True)
        assert view.state("r1") == "done"
        assert view.state("r2") == "queued"
        assert [r["id"] for r in view.pending()] == ["r2"]
        assert view.seq_max == 2
        assert view.result("r1") == {"fake": "result"}

    def test_duplicate_terminal_is_exactly_once_violation(self, tmp_path):
        j = RequestJournal(tmp_path / "svc.jsonl")
        j.append_request("r1", 1, {})
        j.append_done("r1", 1, {}, 0.1)
        j.append_failed("r1", "late loser", 500, 3)
        with pytest.raises(CheckpointError, match="exactly-once"):
            j.load()

    def test_duplicate_accept_raises(self, tmp_path):
        j = RequestJournal(tmp_path / "svc.jsonl")
        j.append_request("r1", 1, {})
        j.append_request("r1", 2, {})
        with pytest.raises(CheckpointError, match="accepted twice"):
            j.load()

    def test_orphan_lifecycle_record_raises(self, tmp_path):
        j = RequestJournal(tmp_path / "svc.jsonl")
        j.append_running("ghost", 1)
        j.append_request("r1", 1, {})  # ghost is now an interior record
        with pytest.raises(CheckpointError, match="never accepted"):
            j.load()

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "svc.jsonl"
        j = RequestJournal(path)
        j.append_request("r1", 1, {})
        j.append_done("r1", 42, {}, 0.1)
        data = path.read_bytes()
        path.write_bytes(data[:-25])  # SIGKILL mid-append
        view = j.load()
        assert view.dropped_tail == 1
        assert view.state("r1") == "queued"  # the done record was torn

    def test_attempts_tracked(self, tmp_path):
        j = RequestJournal(tmp_path / "svc.jsonl")
        j.append_request("r1", 1, {})
        j.append_running("r1", 1)
        j.append_running("r1", 2)
        view = j.load()
        assert view.attempts["r1"] == 2
        assert view.state("r1") == "running"

    def test_quarantine_is_terminal(self, tmp_path):
        j = RequestJournal(tmp_path / "svc.jsonl")
        j.append_request("r1", 1, {})
        j.append_quarantined("r1", "poison", 2)
        view = j.load()
        assert view.state("r1") == "quarantined"
        assert view.pending() == []


class TestDeterministicJitter:
    def test_stable_and_bounded(self):
        a = deterministic_jitter("r000001", 1)
        assert a == deterministic_jitter("r000001", 1)
        assert 0.0 <= a < 1.0
        assert a != deterministic_jitter("r000001", 2)


# --- daemon end-to-end ---------------------------------------------------------
class DaemonHarness:
    """Runs a ServiceDaemon on a background thread for one test."""

    def __init__(self, tmp_path, **overrides):
        self.socket_path = str(tmp_path / "svc.sock")
        self.journal_path = str(tmp_path / "svc.jsonl")
        kwargs = dict(socket_path=self.socket_path,
                      journal_path=self.journal_path,
                      workers=1, high_water=8, retries=2,
                      quarantine_after=2)
        kwargs.update(overrides)
        self.daemon = ServiceDaemon(ServiceConfig(**kwargs))
        self.client = ServiceClient(self.socket_path, timeout=10.0)
        self._thread = None

    def __enter__(self):
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.daemon.serve()), daemon=True)
        self._thread.start()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if os.path.exists(self.socket_path) and self.client.alive():
                return self
            time.sleep(0.02)
        raise RuntimeError("daemon did not come up")

    def __exit__(self, *exc):
        try:
            self.client.shutdown(mode="now")
        except ServiceError:
            pass
        self._thread.join(15.0)


@pytest.fixture(autouse=True)
def _smoke_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")


class TestDaemonEndToEnd:
    def test_submit_wait_done(self, tmp_path):
        with DaemonHarness(tmp_path) as h:
            accepted = h.client.submit(**SMOKE)
            assert accepted["state"] == "queued"
            status = h.client.wait(accepted["id"], timeout=120.0)
            assert status["state"] == "done"
            assert status["summary"]["metrics"]["node_usage"] > 0
            # The journal recorded exactly one terminal record, payload intact.
            view = RequestJournal(h.journal_path).load(verify_payloads=True)
            assert view.terminal[accepted["id"]]["kind"] == KIND_DONE

    def test_unknown_id_is_404(self, tmp_path):
        with DaemonHarness(tmp_path) as h:
            with pytest.raises(ServiceError) as excinfo:
                h.client.status("r999999")
            assert excinfo.value.code == 404

    def test_stats_reports_states(self, tmp_path):
        with DaemonHarness(tmp_path) as h:
            accepted = h.client.submit(**SMOKE)
            h.client.wait(accepted["id"], timeout=120.0)
            stats = h.client.stats()
            assert stats["states"].get("done") == 1
            assert stats["policy"] == "fcfs"
            assert "service.accepted" in stats["metrics"]["counters"]

    def test_malformed_line_gets_400_not_disconnect(self, tmp_path):
        import socket as socketlib
        with DaemonHarness(tmp_path) as h:
            with socketlib.socket(socketlib.AF_UNIX,
                                  socketlib.SOCK_STREAM) as sock:
                sock.settimeout(5.0)
                sock.connect(h.socket_path)
                sock.sendall(b"not json\n")
                first = sock.makefile("rb").readline()
                assert b'"code": 400' in first or b'"code":400' in first

    def test_crash_once_recovers_and_completes(self, tmp_path):
        # A worker SIGKILL mid-task breaks the pool; the request is
        # requeued for free, re-run, and completes — with the crash
        # visible in the metrics, not in the outcome.
        with DaemonHarness(tmp_path, allow_chaos=True) as h:
            accepted = h.client.submit(chaos={"crash_attempts": 1}, **SMOKE)
            status = h.client.wait(accepted["id"], timeout=120.0)
            assert status["state"] == "done"
            counters = h.client.stats()["metrics"]["counters"]
            assert counters.get("service.pool_rebuilds", 0) >= 1

    def test_poison_request_is_quarantined(self, tmp_path):
        # A request that crashes its worker on *every* attempt must be
        # quarantined after `quarantine_after` isolated convictions, and
        # must not poison a healthy request sharing the service.
        with DaemonHarness(tmp_path, allow_chaos=True, workers=2,
                           quarantine_after=2) as h:
            poison = h.client.submit(chaos={"crash_attempts": -1}, **SMOKE)
            healthy = h.client.submit(**SMOKE)
            outcomes = h.client.wait_all(
                [poison["id"], healthy["id"]], timeout=180.0)
            assert outcomes[poison["id"]]["state"] == "quarantined"
            assert outcomes[healthy["id"]]["state"] == "done"
            view = RequestJournal(h.journal_path).load()
            assert view.state(poison["id"]) == "quarantined"

    def test_hung_worker_is_killed_and_retried(self, tmp_path):
        # The request hangs (sleeps far past the deadline) on attempt 1;
        # the supervisor SIGKILLs the claimed worker and the retry
        # completes clean.
        with DaemonHarness(tmp_path, allow_chaos=True,
                           deadline=2.0, retries=2) as h:
            accepted = h.client.submit(
                chaos={"hang_attempts": 1, "hang_seconds": 120.0}, **SMOKE)
            status = h.client.wait(accepted["id"], timeout=120.0)
            assert status["state"] == "done"
            counters = h.client.stats()["metrics"]["counters"]
            assert counters.get("service.hangs", 0) >= 1

    def test_shed_past_high_water(self, tmp_path):
        # One worker wedged on a hang + high_water=2 → the third submit
        # is shed with a 429 while the queue is full.
        with DaemonHarness(tmp_path, allow_chaos=True, workers=1,
                           high_water=2, deadline=None) as h:
            h.client.submit(
                chaos={"hang_attempts": -1, "hang_seconds": 600.0}, **SMOKE)
            time.sleep(0.3)  # let the hang occupy the only worker
            h.client.submit(**SMOKE)
            h.client.submit(**SMOKE)
            with pytest.raises(ServiceError) as excinfo:
                h.client.submit(**SMOKE)
            assert excinfo.value.code == 429
            assert h.client.stats()["metrics"]["counters"]["service.shed"] == 1

    def test_draining_daemon_rejects_submits(self, tmp_path):
        with DaemonHarness(tmp_path) as h:
            accepted = h.client.submit(**SMOKE)
            h.client.wait(accepted["id"], timeout=120.0)
            h.client.shutdown(mode="graceful")
            with pytest.raises(ServiceError) as excinfo:
                h.client.submit(**SMOKE)
            assert excinfo.value.code == 503


class TestRecovery:
    def test_unfinished_requests_resume_on_restart(self, tmp_path):
        # Simulate a daemon that accepted work and was SIGKILL'd before
        # running it: the journal holds accepted records with no terminal
        # records.  A fresh daemon must replay and finish them unasked.
        journal = RequestJournal(tmp_path / "svc.jsonl")
        journal.append_request("r000001", 1, dict(SMOKE))
        journal.append_request("r000002", 2, dict(SMOKE))
        with DaemonHarness(tmp_path, workers=2) as h:
            assert h.daemon.recovered == 2
            outcomes = h.client.wait_all(["r000001", "r000002"], timeout=180.0)
            assert {s["state"] for s in outcomes.values()} == {"done"}
        view = journal.load(verify_payloads=True)
        assert set(view.terminal) == {"r000001", "r000002"}
        assert view.pending() == []

    def test_finished_requests_are_not_recomputed(self, tmp_path):
        # A result journaled before the kill is served from the journal;
        # restart must not produce a second terminal record for it.
        journal = RequestJournal(tmp_path / "svc.jsonl")
        journal.append_request("r000001", 1, dict(SMOKE))
        journal.append_done("r000001", {"sentinel": 7}, {"metrics": {}}, 0.1)
        with DaemonHarness(tmp_path) as h:
            assert h.daemon.recovered == 0
            status = h.client.status("r000001")
            assert status["state"] == "done"
        view = journal.load()
        assert view.terminal["r000001"]["kind"] == KIND_DONE
        assert view.result("r000001") == {"sentinel": 7}

    def test_new_ids_continue_after_recovered_sequence(self, tmp_path):
        journal = RequestJournal(tmp_path / "svc.jsonl")
        journal.append_request("r000007", 7, dict(SMOKE))
        journal.append_failed("r000007", "old failure", 500, 3)
        with DaemonHarness(tmp_path) as h:
            accepted = h.client.submit(**SMOKE)
            assert accepted["id"] == "r000008"
            h.client.wait(accepted["id"], timeout=120.0)


class TestDegradation:
    def test_pressure_caps_generations(self, tmp_path):
        daemon = ServiceDaemon(ServiceConfig(
            socket_path=str(tmp_path / "s.sock"), high_water=4))
        for i in range(4):
            daemon.queue.offer(f"r{i}", {})
        assert daemon.queue.degrade_level() == 2
        effective, level, overrides = daemon._degrade(dict(SMOKE))
        assert level == 2
        assert effective["generations"] == overrides["generations"]
        assert effective["generations"] >= 1
        assert effective["watchdog_budget"] == 1.0

    def test_no_pressure_no_overrides(self, tmp_path):
        daemon = ServiceDaemon(ServiceConfig(
            socket_path=str(tmp_path / "s.sock"), high_water=4))
        effective, level, overrides = daemon._degrade(dict(SMOKE))
        assert (effective, level, overrides) == (dict(SMOKE), 0, {})

    def test_degrade_disabled(self, tmp_path):
        daemon = ServiceDaemon(ServiceConfig(
            socket_path=str(tmp_path / "s.sock"), high_water=4,
            degrade=False))
        for i in range(4):
            daemon.queue.offer(f"r{i}", {})
        _, level, _ = daemon._degrade(dict(SMOKE))
        assert level == 0


# --- client resilience ----------------------------------------------------------
class TestClientRetry:
    def test_dead_endpoint_is_transient_and_retried(self, tmp_path):
        from repro.errors import TransientServiceError
        from repro.service.client import ClientRetryPolicy
        from repro.resilience import BackoffPolicy

        client = ServiceClient(
            str(tmp_path / "nothing.sock"), timeout=0.5,
            retry=ClientRetryPolicy(
                attempts=3,
                backoff=BackoffPolicy(initial=0.01, max_delay=0.02)))
        with pytest.raises(TransientServiceError) as excinfo:
            client.ping()
        assert client.retries == 2  # 3 attempts = 2 retries
        assert excinfo.value.sent is False  # never connected: unambiguous

    def test_no_retry_policy_is_single_attempt(self, tmp_path):
        from repro.errors import TransientServiceError
        from repro.service.client import NO_RETRY

        client = ServiceClient(str(tmp_path / "nothing.sock"),
                               timeout=0.5, retry=NO_RETRY)
        with pytest.raises(TransientServiceError):
            client.ping()
        assert client.retries == 0

    def test_protocol_garbage_is_not_retried(self, tmp_path):
        """A daemon speaking garbage is answered-but-wrong: plain 502."""
        import socket as socketlib
        from repro.errors import TransientServiceError
        from repro.service.client import ClientRetryPolicy

        path = str(tmp_path / "garbage.sock")
        server = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        server.bind(path)
        server.listen(4)
        served = {"n": 0}

        def speak_garbage():
            while True:
                try:
                    conn, _ = server.accept()
                except OSError:
                    return
                with conn:
                    conn.recv(65536)
                    conn.sendall(b"}{ not json\n")
                    served["n"] += 1

        thread = threading.Thread(target=speak_garbage, daemon=True)
        thread.start()
        try:
            client = ServiceClient(path, timeout=2.0,
                                   retry=ClientRetryPolicy(attempts=4))
            with pytest.raises(ServiceError) as excinfo:
                client.ping()
            assert not isinstance(excinfo.value, TransientServiceError)
            assert excinfo.value.code == 502
            assert served["n"] == 1  # exactly one attempt: no retry
        finally:
            server.close()

    def test_ambiguous_failure_not_retried_when_not_idempotent(self, tmp_path):
        """A connection that dies after send must not be blindly resent."""
        import socket as socketlib
        from repro.errors import TransientServiceError
        from repro.service.client import ClientRetryPolicy

        path = str(tmp_path / "dropper.sock")
        server = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        server.bind(path)
        server.listen(4)
        accepted = {"n": 0}

        def drop_after_read():
            while True:
                try:
                    conn, _ = server.accept()
                except OSError:
                    return
                with conn:
                    accepted["n"] += 1
                    conn.recv(65536)  # read the frame, answer nothing

        thread = threading.Thread(target=drop_after_read, daemon=True)
        thread.start()
        try:
            client = ServiceClient(path, timeout=2.0,
                                   retry=ClientRetryPolicy(attempts=3))
            with pytest.raises(TransientServiceError) as excinfo:
                client.request({"op": "ping"}, idempotent=False)
            assert excinfo.value.sent is True
            assert accepted["n"] == 1  # ambiguity propagated, no resend
        finally:
            server.close()

    def test_wait_all_shares_one_deadline(self, tmp_path, monkeypatch):
        """The batch deadline is honest: no per-id restart of the budget."""
        from repro.errors import ServiceTimeout

        client = ServiceClient(str(tmp_path / "nothing.sock"), timeout=0.5)
        monkeypatch.setattr(
            client, "status", lambda rid: {"state": "queued"})
        t0 = time.monotonic()
        with pytest.raises(ServiceTimeout) as excinfo:
            client.wait_all(["r1", "r2", "r3"], timeout=0.4, poll=0.01)
        elapsed = time.monotonic() - t0
        assert elapsed < 2.0  # not 3 x 0.4 each
        assert set(excinfo.value.pending) == {"r1", "r2", "r3"}

    def test_wait_all_zero_budget_raises_immediately(self, tmp_path):
        from repro.errors import ServiceTimeout

        client = ServiceClient(str(tmp_path / "nothing.sock"), timeout=0.5)
        with pytest.raises(ServiceTimeout) as excinfo:
            client.wait_all(["r1", "r2"], timeout=0.0)
        assert excinfo.value.pending == ("r1", "r2")


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fails_fast(self, tmp_path):
        from repro.errors import TransientServiceError
        from repro.service.client import CircuitBreaker, NO_RETRY

        breaker = CircuitBreaker(failure_threshold=2, reset_after=60.0)
        client = ServiceClient(str(tmp_path / "nothing.sock"), timeout=0.5,
                               retry=NO_RETRY, breaker=breaker)
        for _ in range(2):
            with pytest.raises(TransientServiceError):
                client.ping()
        assert breaker.state == "open"
        assert breaker.opened == 1
        t0 = time.monotonic()
        with pytest.raises(TransientServiceError) as excinfo:
            client.ping()
        assert time.monotonic() - t0 < 0.2  # no connect attempt
        assert "circuit open" in str(excinfo.value)

    def test_half_open_single_probe_then_close(self):
        from repro.service.client import CircuitBreaker

        breaker = CircuitBreaker(failure_threshold=1, reset_after=0.05)
        breaker.record_failure()
        assert not breaker.allow()
        time.sleep(0.06)
        assert breaker.state == "half-open"
        assert breaker.allow()       # the single probe
        assert not breaker.allow()   # concurrent calls held back
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        from repro.service.client import CircuitBreaker

        breaker = CircuitBreaker(failure_threshold=1, reset_after=0.05)
        breaker.record_failure()
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        assert breaker.opened == 1  # re-arm, not a new open event


class TestHedging:
    def test_slow_first_attempt_is_hedged(self, tmp_path):
        client = ServiceClient(str(tmp_path / "nothing.sock"),
                               hedge_delay=0.05)
        calls = {"n": 0}

        def fake_request(message, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                time.sleep(0.5)
                return {"ok": True, "slow": True}
            return {"ok": True, "fast": True}

        client.request = fake_request
        response = client._hedged_request({"op": "status", "id": "r1"})
        assert response.get("fast")
        assert client.hedges == 1

    def test_fast_response_never_hedges(self, tmp_path):
        client = ServiceClient(str(tmp_path / "nothing.sock"),
                               hedge_delay=0.2)
        client.request = lambda message, **kwargs: {"ok": True}
        assert client._hedged_request({"op": "ping"})["ok"]
        assert client.hedges == 0

    def test_submit_is_never_hedged(self, tmp_path):
        with DaemonHarness(tmp_path) as h:
            client = ServiceClient(h.socket_path, timeout=10.0,
                                   hedge_delay=0.0)

            def explode(message):
                raise AssertionError("submit must not be hedged")

            real = client._hedged_request
            client._hedged_request = explode
            try:
                accepted = client.submit(**SMOKE)
                accepted_keyed = client.submit(idempotency_key="k1", **SMOKE)
            finally:
                client._hedged_request = real
            client.wait(accepted["id"], timeout=120.0)
            client.wait(accepted_keyed["id"], timeout=120.0)

    def test_hedged_error_waits_for_straggler(self, tmp_path):
        """First finisher failing must not mask a later success."""
        client = ServiceClient(str(tmp_path / "nothing.sock"),
                               hedge_delay=0.01)
        calls = {"n": 0}

        def fake_request(message, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                time.sleep(0.3)
                return {"ok": True, "late": True}
            raise ServiceError("hedge lane failed", code=500)

        client.request = fake_request
        response = client._hedged_request({"op": "ping"})
        assert response.get("late")


# --- TCP + HTTP front-end -------------------------------------------------------
class TestNetworkFrontend:
    def tcp_harness(self, tmp_path, **overrides):
        overrides.setdefault("tcp", "127.0.0.1:0")
        return DaemonHarness(tmp_path, **overrides)

    def tcp_port(self, h, deadline=10.0):
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            if h.daemon.tcp_address is not None:
                return h.daemon.tcp_address[1]
            time.sleep(0.02)
        raise RuntimeError("tcp listener never came up")

    def test_tcp_submit_wait_done(self, tmp_path):
        with self.tcp_harness(tmp_path) as h:
            port = self.tcp_port(h)
            tcp_client = ServiceClient(f"127.0.0.1:{port}", timeout=10.0)
            assert tcp_client.ping()["pong"]
            accepted = tcp_client.submit(**SMOKE)
            status = tcp_client.wait(accepted["id"], timeout=120.0)
            assert status["state"] == "done"

    def test_tcp_and_unix_share_one_daemon(self, tmp_path):
        with self.tcp_harness(tmp_path) as h:
            port = self.tcp_port(h)
            accepted = h.client.submit(**SMOKE)  # via unix
            tcp_client = ServiceClient(f"127.0.0.1:{port}", timeout=10.0)
            status = tcp_client.wait(accepted["id"], timeout=120.0)  # via tcp
            assert status["state"] == "done"

    def _http(self, port, request: bytes) -> bytes:
        import socket as socketlib
        with socketlib.create_connection(("127.0.0.1", port),
                                         timeout=10.0) as sock:
            sock.sendall(request)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)

    def test_http_get_ping(self, tmp_path):
        import json as jsonlib
        with self.tcp_harness(tmp_path) as h:
            port = self.tcp_port(h)
            raw = self._http(
                port, b"GET /ping HTTP/1.1\r\nHost: x\r\n\r\n")
            head, _, body = raw.partition(b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.1 200")
            assert b"application/json" in head
            assert jsonlib.loads(body)["pong"]

    def test_http_post_submit_roundtrip(self, tmp_path):
        import json as jsonlib
        with self.tcp_harness(tmp_path) as h:
            port = self.tcp_port(h)
            message = jsonlib.dumps(
                {"op": "submit", "params": SMOKE}).encode()
            raw = self._http(
                port,
                b"POST / HTTP/1.1\r\nHost: x\r\n"
                + f"Content-Length: {len(message)}\r\n\r\n".encode()
                + message)
            head, _, body = raw.partition(b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.1 200")
            accepted = jsonlib.loads(body)
            assert accepted["state"] == "queued"
            h.client.wait(accepted["id"], timeout=120.0)

    def test_http_unknown_path_is_404_not_disconnect_crash(self, tmp_path):
        with self.tcp_harness(tmp_path) as h:
            port = self.tcp_port(h)
            raw = self._http(
                port, b"GET /launch_missiles HTTP/1.1\r\nHost: x\r\n\r\n")
            assert raw.startswith(b"HTTP/1.1 404")
            assert h.client.alive()  # daemon unbothered


class TestConnectionHardening:
    def _connect(self, path):
        import socket as socketlib
        sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        sock.settimeout(10.0)
        sock.connect(path)
        return sock

    def test_slow_loris_disconnected_by_io_deadline(self, tmp_path):
        with DaemonHarness(tmp_path, io_deadline=0.5) as h:
            sock = self._connect(h.socket_path)
            try:
                sock.sendall(b'{"op": "pi')  # half a frame, forever
                t0 = time.monotonic()
                assert sock.recv(4096) == b""  # EOF: daemon cut us off
                assert time.monotonic() - t0 < 5.0
            finally:
                sock.close()
            assert h.client.alive()

    def test_torn_frame_disconnect_tolerated(self, tmp_path):
        with DaemonHarness(tmp_path) as h:
            sock = self._connect(h.socket_path)
            sock.sendall(b'{"op": "status", "id": "r0')
            sock.close()  # dropped mid-frame
            assert h.client.alive()

    def test_torn_final_frame_without_newline_still_answered(self, tmp_path):
        """EOF can terminate the last frame in place of the newline."""
        import json as jsonlib
        import socket as socketlib
        with DaemonHarness(tmp_path) as h:
            sock = self._connect(h.socket_path)
            try:
                sock.sendall(b'{"op": "ping"}')  # no trailing newline
                sock.shutdown(socketlib.SHUT_WR)
                line = sock.makefile("rb").readline()
                assert jsonlib.loads(line)["pong"]
            finally:
                sock.close()

    def test_overlong_line_gets_400_and_close(self, tmp_path):
        from repro.service.protocol import MAX_LINE_BYTES
        with DaemonHarness(tmp_path) as h:
            sock = self._connect(h.socket_path)
            try:
                sock.sendall(b'{"op": "ping", "pad": "'
                             + b"x" * (MAX_LINE_BYTES + 1024) + b'"}\n')
                reader = sock.makefile("rb")
                response = reader.readline()
                assert b'"code": 400' in response
                assert reader.readline() == b""  # then disconnected
            finally:
                sock.close()
            assert h.client.alive()

    def test_loris_dropped_even_when_workers_spawn_midstream(self, tmp_path):
        """Forked workers must not inherit (and hold open) client fds.

        Worker processes spawn lazily on the first dispatch.  If they
        fork from the daemon while a connection is open, they inherit
        its fd and the daemon's io-deadline close never reaches the
        client — the connection stays established for the worker's
        lifetime.  The pool's forkserver context prevents this.
        """
        with DaemonHarness(tmp_path, io_deadline=0.5, workers=1) as h:
            sock = self._connect(h.socket_path)
            try:
                sock.sendall(b'{"op": "pi')  # half a frame, held open
                # Force worker spawn while the loris connection exists.
                accepted = h.client.submit(**SMOKE)
                h.client.wait(accepted["id"], timeout=120.0)
                sock.settimeout(10.0)
                assert sock.recv(4096) == b""  # EOF despite live workers
            finally:
                sock.close()

    def test_connection_limit_sheds_with_503(self, tmp_path):
        import json as jsonlib

        def ping_on(sock):
            sock.sendall(b'{"op": "ping"}\n')
            return jsonlib.loads(sock.makefile("rb").readline())

        with DaemonHarness(tmp_path, max_connections=1,
                           io_deadline=2.0) as h:
            # Claim the only slot with a completed ping on a persistent
            # connection — a transient straggler (e.g. the harness's
            # alive() probe) may shed us instead, so retry until owned.
            held = None
            deadline = time.monotonic() + 10.0
            while held is None and time.monotonic() < deadline:
                sock = self._connect(h.socket_path)
                if ping_on(sock).get("pong"):
                    held = sock  # our handler answered: we are counted
                else:
                    sock.close()
                    time.sleep(0.05)
            assert held is not None, "could not claim the connection slot"
            try:
                second = self._connect(h.socket_path)
                shed = ping_on(second)
                second.close()
                assert shed["code"] == 503
                assert not shed["ok"]
            finally:
                held.close()
            # Slot freed: normal service resumes.  (Probe sparingly — with
            # a one-connection budget, each probe's handler briefly holds
            # the slot after the client hangs up, shedding a too-eager
            # follow-up probe.)
            up = False
            deadline = time.monotonic() + 10.0
            while not up and time.monotonic() < deadline:
                up = h.client.alive()
                time.sleep(0.25)
            assert up


# --- cancel + idempotency -------------------------------------------------------
class TestCancelAndIdempotency:
    def test_duplicate_key_is_deduped(self, tmp_path):
        with DaemonHarness(tmp_path) as h:
            first = h.client.submit(idempotency_key="job-1", **SMOKE)
            second = h.client.submit(idempotency_key="job-1", **SMOKE)
            assert second["id"] == first["id"]
            assert second.get("deduped") is True
            assert first.get("deduped") is None
            stats = h.client.stats()
            assert stats["metrics"]["counters"].get("service.deduped") == 1

    def test_dedup_survives_restart(self, tmp_path):
        with DaemonHarness(tmp_path) as h:
            first = h.client.submit(idempotency_key="job-1", **SMOKE)
            h.client.wait(first["id"], timeout=120.0)
        with DaemonHarness(tmp_path) as h:  # same journal: keys recovered
            again = h.client.submit(idempotency_key="job-1", **SMOKE)
            assert again["id"] == first["id"]
            assert again.get("deduped") is True

    def test_status_by_key(self, tmp_path):
        with DaemonHarness(tmp_path) as h:
            accepted = h.client.submit(idempotency_key="job-1", **SMOKE)
            status = h.client.status_by_key("job-1")
            assert status["id"] == accepted["id"]
            with pytest.raises(ServiceError) as excinfo:
                h.client.status_by_key("nobody")
            assert excinfo.value.code == 404

    def test_cancel_queued_request(self, tmp_path):
        with DaemonHarness(tmp_path, workers=1) as h:
            first = h.client.submit(**SMOKE)
            second = h.client.submit(**SMOKE)  # stuck behind first
            response = h.client.cancel(second["id"], reason="test")
            assert response["state"] in ("cancelled", "cancelling", "done")
            final = h.client.wait(second["id"], timeout=120.0)
            h.client.wait(first["id"], timeout=120.0)
            if response["state"] != "done":
                assert final["state"] == "cancelled"
                view = RequestJournal(h.journal_path).load()
                assert view.terminal[second["id"]]["kind"] == \
                    "service-cancelled"

    def test_cancel_unknown_is_404(self, tmp_path):
        with DaemonHarness(tmp_path) as h:
            with pytest.raises(ServiceError) as excinfo:
                h.client.cancel("r999999")
            assert excinfo.value.code == 404

    def test_cancel_done_request_is_noop(self, tmp_path):
        with DaemonHarness(tmp_path) as h:
            accepted = h.client.submit(**SMOKE)
            h.client.wait(accepted["id"], timeout=120.0)
            response = h.client.cancel(accepted["id"])
            assert response["state"] == "done"  # too late, honestly reported

    def test_cancelled_state_is_terminal_for_wait(self, tmp_path):
        with DaemonHarness(tmp_path, workers=1) as h:
            first = h.client.submit(**SMOKE)
            second = h.client.submit(**SMOKE)
            h.client.cancel(second["id"])
            status = h.client.wait(second["id"], timeout=120.0)
            assert status["state"] in ("cancelled", "done")
            h.client.wait(first["id"], timeout=120.0)
