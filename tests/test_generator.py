"""Synthetic workload generator (§4.1 substitution)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.generator import (
    WorkloadProfile,
    cori_profile,
    generate,
    theta_profile,
)
from repro.workloads.spec import CORI, THETA


class TestProfiles:
    def test_cori_profile_defaults(self):
        p = cori_profile()
        assert p.machine is CORI
        assert p.bb_fraction == pytest.approx(0.00618)  # §4.1
        assert p.min_nodes == 1

    def test_theta_profile_defaults(self):
        p = theta_profile()
        assert p.machine is THETA
        assert p.bb_fraction == pytest.approx(0.1718)   # §4.1
        # Figure 9 bins from 1-8 nodes: the full size range is present,
        # with a large-job bias (capability computing).
        assert p.min_nodes == 1
        assert p.size_log_mean > cori_profile().size_log_mean

    def test_invalid_profile_params(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(name="x", machine=THETA, n_jobs=0)
        with pytest.raises(ConfigurationError):
            WorkloadProfile(name="x", machine=THETA, load=0.0)
        with pytest.raises(ConfigurationError):
            WorkloadProfile(name="x", machine=THETA, bb_fraction=1.5)

    def test_scaled_machine_profile(self):
        p = theta_profile(machine=THETA.scaled(8))
        assert p.min_nodes <= THETA.scaled(8).nodes


class TestGenerate:
    def test_job_count(self):
        tr = generate(theta_profile(n_jobs=200), seed=0)
        assert len(tr) == 200

    def test_deterministic(self):
        a = generate(theta_profile(n_jobs=100), seed=7)
        b = generate(theta_profile(n_jobs=100), seed=7)
        assert [(j.jid, j.submit_time, j.nodes, j.bb) for j in a] == \
               [(j.jid, j.submit_time, j.nodes, j.bb) for j in b]

    def test_seed_changes_trace(self):
        a = generate(theta_profile(n_jobs=100), seed=1)
        b = generate(theta_profile(n_jobs=100), seed=2)
        assert [j.nodes for j in a] != [j.nodes for j in b]

    def test_offered_load_matches_target(self):
        tr = generate(cori_profile(n_jobs=800, load=1.3), seed=3)
        assert tr.offered_load() == pytest.approx(1.3, rel=0.02)

    def test_sizes_within_machine(self):
        tr = generate(theta_profile(n_jobs=300), seed=4)
        assert all(1 <= j.nodes <= THETA.nodes for j in tr)

    def test_theta_large_job_bias(self):
        """Capability vs capacity: Theta's median job dwarfs Cori's."""
        theta = generate(theta_profile(n_jobs=500), seed=5)
        cori = generate(cori_profile(n_jobs=500), seed=5)
        med_theta = np.median([j.nodes for j in theta])
        med_cori = np.median([j.nodes for j in cori])
        assert med_theta / THETA.nodes > 4 * med_cori / 12_076

    def test_cori_small_job_dominance(self):
        """Capacity computing: most Cori jobs are small (§4.1)."""
        tr = generate(cori_profile(n_jobs=1000), seed=6)
        sizes = np.array([j.nodes for j in tr])
        assert np.median(sizes) < 100

    def test_bb_fraction_realised(self):
        tr = generate(theta_profile(n_jobs=2000), seed=7)
        assert tr.bb_fraction() == pytest.approx(0.1718, abs=0.03)

    def test_walltimes_at_least_runtime(self):
        tr = generate(cori_profile(n_jobs=300), seed=8)
        assert all(j.walltime >= j.runtime for j in tr)

    def test_runtime_bounds(self):
        p = theta_profile(n_jobs=300)
        tr = generate(p, seed=9)
        assert all(p.runtime_min <= j.runtime <= p.runtime_max for j in tr)

    def test_submit_times_ordered_from_zero(self):
        tr = generate(theta_profile(n_jobs=100), seed=10)
        submits = [j.submit_time for j in tr]
        assert submits[0] == 0.0
        assert submits == sorted(submits)

    def test_no_dependencies_by_default(self):
        tr = generate(theta_profile(n_jobs=100), seed=11)
        assert all(not j.deps for j in tr)

    def test_dep_fraction_generates_chains(self):
        p = WorkloadProfile(name="x", machine=THETA, n_jobs=200,
                            min_nodes=128, size_log_mean=np.log(192),
                            dep_fraction=0.5)
        tr = generate(p, seed=12)
        withdeps = [j for j in tr if j.deps]
        assert len(withdeps) > 50
        # Each dependency points at the immediately preceding job.
        assert all(max(j.deps) == j.jid - 1 for j in withdeps)

    def test_users_assigned(self):
        tr = generate(cori_profile(n_jobs=50), seed=13)
        assert all(j.user.startswith("u") for j in tr)
