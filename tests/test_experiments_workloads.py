"""Deterministic evaluation-workload construction."""

import pytest

from repro.experiments.config import get_scale
from repro.experiments.workloads import (
    ALL_WORKLOADS,
    CORI_WORKLOADS,
    THETA_WORKLOADS,
    get_all_workloads,
    get_ssd_workloads,
    get_workload,
)

SMOKE = get_scale("smoke")


class TestWorkloadSet:
    def test_ten_workloads(self):
        assert len(ALL_WORKLOADS) == 10
        assert len(CORI_WORKLOADS) == len(THETA_WORKLOADS) == 5

    def test_get_all(self):
        suites = get_all_workloads(SMOKE)
        assert set(suites) == set(ALL_WORKLOADS)

    def test_get_single(self):
        tr = get_workload("Theta-S4", SMOKE)
        assert tr.name == "Theta-S4"
        assert len(tr) == SMOKE.n_jobs

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("Summit-S1", SMOKE)

    def test_deterministic_across_calls(self):
        a = get_workload("Cori-S2", SMOKE)
        b = get_workload("Cori-S2", SMOKE)
        assert [(j.jid, j.bb) for j in a] == [(j.jid, j.bb) for j in b]

    def test_machines_assigned(self):
        assert get_workload("Cori-S1", SMOKE).machine.base_policy == "fcfs"
        assert get_workload("Theta-S1", SMOKE).machine.base_policy == "wfp"

    def test_machine_scaled_per_config(self):
        tr = get_workload("Cori-Original", SMOKE)
        assert tr.machine.nodes == 12_076 // SMOKE.cori_factor

    def test_theta_original_via_darshan(self):
        """Theta-Original's BB requests come from the Darshan pipeline."""
        tr = get_workload("Theta-Original", SMOKE)
        assert 0.0 < tr.bb_fraction() < 0.5

    def test_bb_fractions_match_s_workloads(self):
        suites = get_all_workloads(SMOKE)
        assert suites["Theta-S1"].bb_fraction() == pytest.approx(0.5, abs=0.05)
        assert suites["Theta-S4"].bb_fraction() == pytest.approx(0.75, abs=0.05)


class TestSSDWorkloads:
    def test_six_workloads(self):
        suites = get_ssd_workloads(SMOKE)
        assert set(suites) == {
            "Cori-S5", "Cori-S6", "Cori-S7",
            "Theta-S5", "Theta-S6", "Theta-S7",
        }

    def test_every_job_has_ssd_request_possibility(self):
        tr = get_ssd_workloads(SMOKE)["Theta-S6"]
        assert any(j.ssd > 0 for j in tr)

    def test_machines_have_tiers(self):
        for tr in get_ssd_workloads(SMOKE).values():
            assert tr.machine.ssd_tiers is not None
