"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    AllocationError,
    ConfigurationError,
    ReproError,
    SchedulingError,
    SolverError,
    TraceError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigurationError, TraceError, AllocationError,
        SchedulingError, SolverError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_for_bad_input(self):
        # Config/trace problems are caller bugs → ValueError family.
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(TraceError, ValueError)

    def test_runtime_errors_for_state_violations(self):
        assert issubclass(AllocationError, RuntimeError)
        assert issubclass(SchedulingError, RuntimeError)
        assert issubclass(SolverError, RuntimeError)

    def test_one_catch_all(self):
        try:
            raise TraceError("x")
        except ReproError:
            pass
