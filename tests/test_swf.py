"""Standard Workload Format interchange."""

import pytest

from repro.errors import TraceError
from repro.simulator.job import Job
from repro.workloads.spec import MachineSpec
from repro.workloads.swf import read_swf, write_swf
from repro.workloads.trace import Trace

MACHINE = MachineSpec(name="Test", nodes=100, bb_capacity=1000.0)


def make_trace():
    jobs = [
        Job(jid=1, submit_time=0.0, runtime=100.0, walltime=200.0, nodes=10,
            bb=50.0, ssd=64.0, user="u3"),
        Job(jid=2, submit_time=60.0, runtime=30.0, walltime=60.0, nodes=5,
            deps=frozenset({1}), user="u4"),
    ]
    return Trace(name="swf-test", machine=MACHINE, jobs=tuple(jobs))


class TestRoundTrip:
    def test_fields_preserved(self, tmp_path):
        path = tmp_path / "trace.swf"
        write_swf(make_trace(), path)
        back = read_swf(path, MACHINE)
        assert len(back) == 2
        j1, j2 = back.jobs
        assert j1.nodes == 10
        assert j1.bb == pytest.approx(50.0)
        assert j1.ssd == pytest.approx(64.0)
        assert j1.walltime == pytest.approx(200.0)
        assert j2.deps == frozenset({1})

    def test_header_comments_written(self, tmp_path):
        path = tmp_path / "trace.swf"
        write_swf(make_trace(), path)
        text = path.read_text()
        assert text.startswith(";")
        assert "burst buffer" in text


class TestReader:
    def test_plain_18_field_swf(self, tmp_path):
        # A standard SWF line without our extension columns.
        path = tmp_path / "plain.swf"
        path.write_text(
            "; comment\n"
            "1 0 -1 120 8 -1 -1 8 600 -1 1 5 -1 -1 -1 -1 -1 -1\n"
        )
        tr = read_swf(path, MACHINE)
        assert len(tr) == 1
        job = tr.jobs[0]
        assert job.nodes == 8
        assert job.runtime == 120.0
        assert job.walltime == 600.0
        assert job.bb == 0.0

    def test_skips_invalid_jobs(self, tmp_path):
        path = tmp_path / "mixed.swf"
        path.write_text(
            "1 0 -1 -1 8 -1 -1 8 600 -1 0 -1 -1 -1 -1 -1 -1 -1\n"   # no runtime
            "2 0 -1 120 0 -1 -1 0 600 -1 1 -1 -1 -1 -1 -1 -1 -1\n"  # no procs
            "3 5 -1 120 8 -1 -1 8 600 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
        )
        tr = read_swf(path, MACHINE)
        assert [j.jid for j in tr] == [3]

    def test_short_line_rejected(self, tmp_path):
        path = tmp_path / "short.swf"
        path.write_text("1 2 3\n")
        with pytest.raises(TraceError):
            read_swf(path, MACHINE)

    def test_unparsable_rejected(self, tmp_path):
        path = tmp_path / "garbage.swf"
        path.write_text("a b c d e f g h i j k l m n o p q r\n")
        with pytest.raises(TraceError):
            read_swf(path, MACHINE)

    def test_oversized_clamped_to_machine(self, tmp_path):
        path = tmp_path / "big.swf"
        path.write_text(
            "1 0 -1 120 500 -1 -1 500 600 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
        )
        tr = read_swf(path, MACHINE)
        assert tr.jobs[0].nodes == 100

    def test_preceding_job_only_when_seen(self, tmp_path):
        path = tmp_path / "dep.swf"
        path.write_text(
            "1 0 -1 120 8 -1 -1 8 600 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
            "2 10 -1 120 8 -1 -1 8 600 -1 1 -1 -1 -1 -1 -1 1 -1\n"
            "3 20 -1 120 8 -1 -1 8 600 -1 1 -1 -1 -1 -1 -1 99 -1\n"
        )
        tr = read_swf(path, MACHINE)
        by_id = {j.jid: j for j in tr}
        assert by_id[2].deps == frozenset({1})
        assert by_id[3].deps == frozenset()
