"""GA warm-start seeding and paper-exact (random-init) mode."""

import numpy as np

from repro.core.exhaustive import ExhaustiveSolver
from repro.core.ga import MOGASolver
from repro.core.gd import generational_distance
from repro.core.problem import SelectionProblem, SSDSelectionProblem
from repro.simulator.job import Job


def make_job(jid, nodes, bb, ssd=0.0):
    return Job(jid=jid, submit_time=0.0, runtime=10.0, walltime=10.0,
               nodes=nodes, bb=bb, ssd=ssd)


def random_problem(w=12, seed=3):
    rng = np.random.default_rng(seed)
    jobs = [make_job(i, int(rng.integers(1, 40)), float(rng.integers(0, 60)))
            for i in range(w)]
    return SelectionProblem.from_window(jobs, 120, 150.0)


class TestGreedyChromosomes:
    def test_linear_problem_seeds_feasible(self):
        problem = random_problem()
        seeds = problem.greedy_chromosomes()
        assert seeds.shape[1] == problem.w
        assert problem.feasible(seeds).all()

    def test_seeds_are_maximal(self):
        """No unselected job fits into a greedy seed's leftover capacity."""
        problem = random_problem()
        for genes in problem.greedy_chromosomes():
            used = genes.astype(float) @ problem.demands
            left = problem.capacities - used
            for i in np.flatnonzero(genes == 0):
                assert (problem.demands[i] > left + 1e-9).any()

    def test_ssd_problem_seeds_feasible(self):
        jobs = [make_job(1, 2, 5.0, ssd=64.0), make_job(2, 2, 0.0, ssd=200.0),
                make_job(3, 1, 3.0), make_job(4, 3, 8.0, ssd=32.0)]
        problem = SSDSelectionProblem(jobs, 8, 10.0, {128.0: 4, 256.0: 4})
        seeds = problem.greedy_chromosomes()
        assert problem.feasible(seeds).all()

    def test_empty_window(self):
        problem = SelectionProblem(np.zeros((0, 2)), [1.0, 1.0])
        assert problem.greedy_chromosomes().shape[0] == 0


class TestSeedingModes:
    def test_seeded_at_low_g_beats_random_at_low_g(self):
        """Warm-starting substitutes for the paper's big G budget."""
        problem = random_problem(w=14, seed=9)
        truth = ExhaustiveSolver().solve(problem)
        norm = [120.0, 150.0]

        def mean_gd(seed_greedy):
            gds = []
            for s in range(6):
                solver = MOGASolver(generations=10, population=12,
                                    seed_greedy=seed_greedy, seed=s)
                approx = solver.solve(problem)
                gds.append(generational_distance(
                    approx.objectives, truth.objectives, normalize=norm))
            return np.mean(gds)

        assert mean_gd(True) <= mean_gd(False) + 1e-12

    def test_paper_mode_still_solves(self):
        """seed_greedy=False (paper-exact) converges given the paper's G."""
        jobs = [make_job(1, 80, 20.0), make_job(2, 10, 85.0),
                make_job(3, 40, 5.0), make_job(4, 10, 0.0), make_job(5, 20, 0.0)]
        problem = SelectionProblem.from_window(jobs, 100, 100.0)
        result = MOGASolver(generations=500, seed_greedy=False, seed=0).solve(problem)
        sols = {tuple(g) for g in result.genes}
        assert (0, 1, 1, 1, 1) in sols

    def test_seeded_result_respects_forced(self):
        problem = SelectionProblem.from_window(
            [make_job(1, 80, 20.0), make_job(2, 10, 85.0),
             make_job(3, 40, 5.0), make_job(4, 10, 0.0), make_job(5, 20, 0.0)],
            100, 100.0, forced=[3],
        )
        result = MOGASolver(generations=30, seed=0).solve(problem)
        assert (result.genes[:, 3] == 1).all()
