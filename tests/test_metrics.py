"""Evaluation metrics (§4.2): usages, waits, slowdowns, breakdowns."""

import pytest

from repro.errors import ConfigurationError
from repro.simulator.job import Job
from repro.simulator.metrics import (
    Interval,
    average_slowdown,
    average_wait,
    compute_summary,
    trimmed_interval,
    wait_by_bb_request,
    wait_by_job_size,
    wait_by_runtime,
)
from repro.simulator.recorder import UsageRecorder


def run_job(jid, submit, start, runtime, nodes=1, bb=0.0):
    job = Job(jid=jid, submit_time=submit, runtime=runtime,
              walltime=max(runtime, 1.0), nodes=nodes, bb=bb)
    job.mark_queued()
    job.mark_started(start)
    job.mark_completed(start + runtime)
    return job


class TestInterval:
    def test_reversed_rejected(self):
        with pytest.raises(ConfigurationError):
            Interval(5.0, 4.0)

    def test_span_and_contains(self):
        iv = Interval(2.0, 10.0)
        assert iv.span == 8.0
        assert iv.contains(2.0)
        assert iv.contains(9.99)
        assert not iv.contains(10.0)


class TestTrimmedInterval:
    def test_default_trim(self):
        iv = trimmed_interval(0.0, 100.0)
        assert iv.start == pytest.approx(10.0)
        assert iv.end == pytest.approx(90.0)

    def test_no_trim(self):
        iv = trimmed_interval(0.0, 100.0, warmup_fraction=0.0, cooldown_fraction=0.0)
        assert (iv.start, iv.end) == (0.0, 100.0)

    def test_bad_fractions(self):
        with pytest.raises(ConfigurationError):
            trimmed_interval(0.0, 1.0, warmup_fraction=0.6, cooldown_fraction=0.6)
        with pytest.raises(ConfigurationError):
            trimmed_interval(0.0, 1.0, warmup_fraction=-0.1)


class TestAverages:
    def test_average_wait(self):
        jobs = [run_job(1, 0.0, 10.0, 100.0), run_job(2, 0.0, 30.0, 100.0)]
        assert average_wait(jobs, Interval(0.0, 1000.0)) == pytest.approx(20.0)

    def test_wait_filters_by_submit_interval(self):
        jobs = [run_job(1, 0.0, 10.0, 100.0), run_job(2, 500.0, 530.0, 100.0)]
        assert average_wait(jobs, Interval(400.0, 1000.0)) == pytest.approx(30.0)

    def test_wait_empty(self):
        assert average_wait([], Interval(0.0, 1.0)) == 0.0

    def test_unstarted_jobs_excluded(self):
        job = Job(jid=1, submit_time=0.0, runtime=10.0, walltime=10.0, nodes=1)
        job.mark_queued()
        assert average_wait([job], Interval(0.0, 1.0)) == 0.0

    def test_average_slowdown(self):
        jobs = [run_job(1, 0.0, 100.0, 100.0)]  # (100+100)/100 = 2
        assert average_slowdown(jobs, Interval(0.0, 1e6)) == pytest.approx(2.0)

    def test_slowdown_filters_abnormal_jobs(self):
        normal = run_job(1, 0.0, 100.0, 100.0)
        abnormal = run_job(2, 0.0, 100.0, 1.0)  # sub-minute runtime
        only_normal = average_slowdown([normal], Interval(0.0, 1e6))
        both = average_slowdown([normal, abnormal], Interval(0.0, 1e6))
        assert both == pytest.approx(only_normal)

    def test_abnormal_threshold_configurable(self):
        short = run_job(1, 0.0, 100.0, 1.0)
        assert average_slowdown([short], Interval(0.0, 1e6), abnormal_runtime=0.0) > 1


class TestComputeSummary:
    def test_usages_from_recorder(self):
        rec = UsageRecorder()
        rec.observe_cluster(0.0, nodes_used=5, bb_used=50.0)
        rec.observe_cluster(10.0, nodes_used=0, bb_used=0.0)
        s = compute_summary([], rec, Interval(0.0, 10.0),
                            total_nodes=10, bb_capacity=100.0)
        assert s.node_usage == pytest.approx(0.5)
        assert s.bb_usage == pytest.approx(0.5)

    def test_zero_bb_capacity(self):
        rec = UsageRecorder()
        s = compute_summary([], rec, Interval(0.0, 1.0), total_nodes=1, bb_capacity=0.0)
        assert s.bb_usage == 0.0

    def test_ssd_metrics(self):
        rec = UsageRecorder()
        rec.observe_cluster(0.0, 1, 0.0, ssd_used=100.0, ssd_waste=20.0)
        s = compute_summary([], rec, Interval(0.0, 10.0),
                            total_nodes=1, bb_capacity=0.0, ssd_capacity=200.0)
        assert s.ssd_usage == pytest.approx(0.5)
        assert s.ssd_waste == pytest.approx(0.1)

    def test_as_dict_keys(self):
        rec = UsageRecorder()
        s = compute_summary([], rec, Interval(0.0, 1.0), total_nodes=1, bb_capacity=1.0)
        assert set(s.as_dict()) == {
            "node_usage", "bb_usage", "avg_wait", "avg_slowdown",
            "ssd_usage", "ssd_waste", "n_jobs",
        }

    def test_invalid_total_nodes(self):
        with pytest.raises(ConfigurationError):
            compute_summary([], UsageRecorder(), Interval(0.0, 1.0),
                            total_nodes=0, bb_capacity=1.0)

    def test_n_jobs_counts_measured(self):
        jobs = [run_job(1, 0.0, 1.0, 100.0), run_job(2, 900.0, 901.0, 100.0)]
        rec = UsageRecorder()
        s = compute_summary(jobs, rec, Interval(0.0, 500.0),
                            total_nodes=1, bb_capacity=1.0)
        assert s.n_jobs == 1


class TestBreakdowns:
    def test_wait_by_job_size(self):
        jobs = [run_job(1, 0.0, 10.0, 100.0, nodes=4),
                run_job(2, 0.0, 50.0, 100.0, nodes=2000)]
        out = wait_by_job_size(jobs, Interval(0.0, 1e6))
        assert out["1-8 nodes"] == pytest.approx(10.0)
        assert out["1024-4392 nodes"] == pytest.approx(50.0)

    def test_wait_by_bb_request_zero_bin(self):
        jobs = [run_job(1, 0.0, 10.0, 100.0, bb=0.0),
                run_job(2, 0.0, 30.0, 100.0, bb=300.0 * 1024.0)]
        out = wait_by_bb_request(jobs, Interval(0.0, 1e6))
        assert out["0TB"] == pytest.approx(10.0)
        assert out[">200TB"] == pytest.approx(30.0)

    def test_wait_by_runtime(self):
        jobs = [run_job(1, 0.0, 10.0, 600.0),       # 10 min
                run_job(2, 0.0, 40.0, 13 * 3600.0)]  # 13 h
        out = wait_by_runtime(jobs, Interval(0.0, 1e6))
        assert out["0-0.5h"] == pytest.approx(10.0)
        assert out[">12h"] == pytest.approx(40.0)

    def test_empty_bins_report_zero(self):
        out = wait_by_job_size([], Interval(0.0, 1.0))
        assert all(v == 0.0 for v in out.values())
        assert len(out) == 5
