"""End-to-end integration tests across subsystem boundaries (smoke scale)."""

import pytest

from repro import (
    FCFS,
    SchedulingEngine,
    WindowPolicy,
    make_selector,
)
from repro.experiments import get_scale, get_ssd_workloads, get_workload, run_one
from repro.simulator.job import JobState
from repro.simulator.metrics import compute_summary, trimmed_interval
from repro.workloads import (
    THETA,
    enhance_trace_with_darshan,
    expand_bb_requests,
    generate,
    read_swf,
    synthesize_darshan_log,
    theta_profile,
    write_swf,
)

SMOKE = get_scale("smoke")


class TestFullPaperPipeline:
    """§4.1's trace path: generate → Darshan → enhance → augment → simulate."""

    def test_pipeline(self, tmp_path):
        machine = THETA.scaled(16)
        base = generate(theta_profile(n_jobs=60, bb_fraction=0.0,
                                      machine=machine), seed=5)
        records = synthesize_darshan_log(base, seed=6)
        enhanced = enhance_trace_with_darshan(base, records)
        cap = machine.schedulable_bb
        s2 = expand_bb_requests(enhanced, fraction=0.75,
                                min_request=0.004 * cap, max_request=0.13 * cap,
                                target_bb_load=0.6, seed=7)
        # Round-trip through SWF to prove file interop end to end.
        path = tmp_path / "s2.swf"
        write_swf(s2, path)
        loaded = read_swf(path, machine)
        assert len(loaded) == len(s2)

        selector = make_selector("BBSched", generations=15, seed=8)
        engine = SchedulingEngine(machine.make_cluster(), FCFS(), selector,
                                  WindowPolicy(size=8))
        result = engine.run(loaded.fresh_jobs())
        assert all(j.state is JobState.COMPLETED for j in result.jobs)
        interval = trimmed_interval(0.0, result.makespan)
        summary = compute_summary(result.jobs, result.recorder, interval,
                                  total_nodes=result.total_nodes,
                                  bb_capacity=result.bb_capacity)
        assert 0.0 < summary.node_usage <= 1.0


class TestGridCellsAllMethods:
    @pytest.mark.parametrize("method", [
        "Baseline", "Weighted", "Weighted_CPU", "Weighted_BB",
        "Constrained_CPU", "Constrained_BB", "Bin_Packing", "BBSched",
    ])
    def test_section4_method_completes(self, method):
        r = run_one(get_workload("Theta-S2", SMOKE), method, SMOKE, seed=2)
        assert 0.0 <= r.metric("node_usage") <= 1.0
        assert r.makespan > 0


class TestSSDWorkloadsAllMethods:
    @pytest.mark.parametrize("method", [
        "Baseline", "Weighted", "Constrained_CPU", "Constrained_BB",
        "Constrained_SSD", "Bin_Packing", "BBSched",
    ])
    def test_section5_method_completes(self, method):
        trace = get_ssd_workloads(SMOKE)["Theta-S6"]
        r = run_one(trace, method, SMOKE, seed=3)
        assert r.metric("ssd_usage") >= 0.0
        assert r.metric("ssd_waste") >= 0.0


class TestCrossMethodInvariants:
    def test_all_methods_complete_same_jobs(self):
        trace = get_workload("Cori-S2", SMOKE)
        makespans = {}
        for method in ("Baseline", "Bin_Packing", "BBSched"):
            r = run_one(trace, method, SMOKE, seed=4)
            makespans[method] = r.makespan
        # Work conservation keeps makespans in the same ballpark even
        # though scheduling orders differ.
        lo, hi = min(makespans.values()), max(makespans.values())
        assert hi <= 2.0 * lo
