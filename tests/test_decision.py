"""Decision rules (§3.2.4 two-resource, §5 four-resource)."""

import numpy as np
import pytest

from repro.core.decision import (
    DecisionRule,
    FOUR_RESOURCE_FACTOR,
    TWO_RESOURCE_FACTOR,
    four_resource_rule,
    two_resource_rule,
)
from repro.core.ga import ParetoSet
from repro.errors import SolverError


def pareto(genes, objectives):
    return ParetoSet(genes=np.asarray(genes, dtype=np.uint8),
                     objectives=np.asarray(objectives, dtype=float))


class TestFactories:
    def test_two_resource_factor(self):
        assert two_resource_rule().trade_factor == TWO_RESOURCE_FACTOR == 2.0

    def test_four_resource_factor(self):
        assert four_resource_rule().trade_factor == FOUR_RESOURCE_FACTOR == 4.0

    def test_invalid_factor(self):
        with pytest.raises(SolverError):
            DecisionRule(trade_factor=0.0)


class TestTwoResourceRule:
    def test_table1_trades_to_solution3(self):
        """§1 example: BB gain 0.7 > 2 × node loss 0.2 → pick Solution 3."""
        ps = pareto([[1, 0, 0, 0, 1], [0, 1, 1, 1, 1]],
                    [[100.0, 20.0], [80.0, 90.0]])
        d = two_resource_rule().choose(ps, scales=(100.0, 100.0))
        assert d.genes.tolist() == [0, 1, 1, 1, 1]
        assert d.traded
        assert d.improvement == pytest.approx(0.7)

    def test_no_trade_when_gain_insufficient(self):
        # BB gain 0.3 < 2 × node loss 0.2 → keep the node-max solution.
        ps = pareto([[1, 0], [0, 1]], [[100.0, 20.0], [80.0, 50.0]])
        d = two_resource_rule().choose(ps, scales=(100.0, 100.0))
        assert d.genes.tolist() == [1, 0]
        assert not d.traded

    def test_boundary_is_strict(self):
        # Gain exactly 2× the loss does NOT trade (strict inequality).
        ps = pareto([[1, 0], [0, 1]], [[100.0, 20.0], [80.0, 60.0]])
        d = two_resource_rule().choose(ps, scales=(100.0, 100.0))
        assert not d.traded

    def test_max_improvement_wins_among_qualifying(self):
        ps = pareto([[1, 0, 0], [0, 1, 0], [0, 0, 1]],
                    [[100.0, 10.0], [95.0, 60.0], [90.0, 80.0]])
        d = two_resource_rule().choose(ps, scales=(100.0, 100.0))
        assert d.genes.tolist() == [0, 0, 1]
        assert d.improvement == pytest.approx(0.7)

    def test_tie_on_primary_prefers_front_of_window(self):
        # Equal node utilization; genes selecting earlier slots win.
        ps = pareto([[0, 1, 1], [1, 1, 0]], [[50.0, 30.0], [50.0, 30.0]])
        d = two_resource_rule().choose(ps, scales=(100.0, 100.0))
        assert d.genes.tolist() == [1, 1, 0]

    def test_single_solution(self):
        ps = pareto([[1, 0]], [[10.0, 5.0]])
        d = two_resource_rule().choose(ps, scales=(100.0, 100.0))
        assert d.index == 0
        assert not d.traded

    def test_empty_pareto_rejected(self):
        ps = pareto(np.zeros((0, 2)), np.zeros((0, 2)))
        with pytest.raises(SolverError):
            two_resource_rule().choose(ps, scales=(1.0, 1.0))

    def test_scale_validation(self):
        ps = pareto([[1, 0]], [[1.0, 1.0]])
        with pytest.raises(SolverError):
            two_resource_rule().choose(ps, scales=(1.0,))
        with pytest.raises(SolverError):
            two_resource_rule().choose(ps, scales=(0.0, 1.0))

    def test_candidate_must_actually_improve(self):
        # A candidate with zero secondary gain never displaces the pick,
        # even with zero primary loss.
        ps = pareto([[1, 1], [1, 0]], [[100.0, 50.0], [100.0, 50.0]])
        d = two_resource_rule().choose(ps, scales=(100.0, 100.0))
        assert not d.traded


class TestFourResourceRule:
    def test_summed_secondary_gain(self):
        # Secondary gains: bb +0.3, ssd +0.3, waste +0.3 → 0.9 > 4 × 0.2.
        ps = pareto([[1, 0], [0, 1]],
                    [[100.0, 10.0, 10.0, -50.0], [80.0, 40.0, 40.0, -20.0]])
        d = four_resource_rule().choose(ps, scales=(100.0, 100.0, 100.0, 100.0))
        assert d.genes.tolist() == [0, 1]
        assert d.traded
        assert d.improvement == pytest.approx(0.9)

    def test_insufficient_summed_gain(self):
        # Gains sum to 0.3 < 4 × 0.2.
        ps = pareto([[1, 0], [0, 1]],
                    [[100.0, 10.0, 10.0, -50.0], [80.0, 20.0, 20.0, -40.0]])
        d = four_resource_rule().choose(ps, scales=(100.0, 100.0, 100.0, 100.0))
        assert not d.traded

    def test_negative_secondary_deltas_subtract(self):
        # BB improves hugely but SSD collapses; net gain is what counts.
        ps = pareto([[1, 0], [0, 1]],
                    [[100.0, 10.0, 90.0, 0.0], [95.0, 95.0, 5.0, 0.0]])
        d = four_resource_rule().choose(ps, scales=(100.0,) * 4)
        assert not d.traded
