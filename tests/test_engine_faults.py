"""Engine behaviour under fault injection: kills, requeues, abandonment,
capacity accounting, and the strictly-opt-in default."""

import pytest

from repro.backfill import EasyBackfill
from repro.methods import NaiveSelector, make_selector
from repro.policies import FCFS
from repro.resilience import FaultInjector, FaultScenario, RetryPolicy
from repro.simulator.engine import SchedulingEngine
from repro.simulator.job import Job, JobState
from repro.simulator.cluster import Cluster
from repro.windows import WindowPolicy


def make_job(jid, submit=0.0, runtime=100.0, nodes=1, bb=0.0, ssd=0.0,
             walltime=None, deps=()):
    return Job(jid=jid, submit_time=submit, runtime=runtime,
               walltime=walltime or runtime, nodes=nodes, bb=bb, ssd=ssd,
               deps=frozenset(deps))


def run_sim(jobs, nodes=10, bb=0.0, scenario=None, retry=None, selector=None,
            window=None, ssd_tiers=None):
    cluster = Cluster(nodes=nodes, bb_capacity=bb, ssd_tiers=ssd_tiers)
    engine = SchedulingEngine(
        cluster,
        FCFS(),
        selector or NaiveSelector(),
        window or WindowPolicy(size=5),
        backfill=EasyBackfill(),
        faults=FaultInjector(scenario) if scenario is not None else None,
        retry=retry,
    )
    return engine.run(jobs), engine


#: Node failures every ~400 s on a 10-node machine: every multi-hundred-
#: second job is virtually guaranteed to be hit at least once.
STORMY = FaultScenario(seed=5, node_mtbf=400.0, node_mttr=600.0,
                       nodes_per_failure=2)


class TestKillRequeueLifecycle:
    def test_killed_job_requeues_and_completes(self):
        jobs = [make_job(i, submit=float(10 * i), nodes=4, runtime=800.0)
                for i in range(12)]
        res, _ = run_sim(jobs, scenario=STORMY)
        assert res.stats.killed_jobs > 0
        assert res.stats.requeued_jobs == res.stats.killed_jobs
        assert all(j.state is JobState.COMPLETED for j in res.jobs)
        survivors = [j for j in res.jobs if j.attempts > 0]
        assert survivors
        for j in survivors:
            # end - start reflects the *successful* attempt only.
            assert j.end_time - j.start_time == pytest.approx(j.runtime)
            assert j.lost_node_seconds > 0.0

    def test_lost_work_accounted(self):
        jobs = [make_job(i, submit=float(10 * i), nodes=4, runtime=800.0)
                for i in range(12)]
        res, _ = run_sim(jobs, scenario=STORMY)
        per_job = sum(j.lost_node_seconds for j in res.jobs)
        assert res.stats.lost_node_seconds == pytest.approx(per_job)
        assert per_job > 0.0

    def test_backoff_delays_restart(self):
        retry = RetryPolicy(backoff=500.0, backoff_factor=1.0,
                            max_backoff=500.0)
        jobs = [make_job(i, submit=float(10 * i), nodes=4, runtime=800.0)
                for i in range(12)]
        res, _ = run_sim(jobs, scenario=STORMY, retry=retry)
        victim = next(j for j in res.jobs if j.attempts > 0)
        # The final start can be no earlier than the backoff after a kill.
        assert victim.start_time > victim.submit_time + 500.0

    def test_job_fail_stream_kills_running_jobs(self):
        scenario = FaultScenario(seed=9, job_mtbf=300.0)
        jobs = [make_job(i, submit=float(5 * i), nodes=2, runtime=600.0)
                for i in range(10)]
        res, _ = run_sim(jobs, scenario=scenario)
        assert res.stats.job_faults > 0
        assert res.stats.killed_jobs == res.stats.job_faults
        assert all(j.state is JobState.COMPLETED for j in res.jobs)


class TestAbandonment:
    def test_exhausted_attempts_abandon(self):
        retry = RetryPolicy(max_attempts=0)
        jobs = [make_job(i, submit=float(10 * i), nodes=4, runtime=800.0)
                for i in range(12)]
        res, _ = run_sim(jobs, scenario=STORMY, retry=retry)
        assert res.stats.killed_jobs > 0
        assert res.stats.requeued_jobs == 0
        abandoned = [j for j in res.jobs if j.state is JobState.ABANDONED]
        assert len(abandoned) == res.stats.abandoned_jobs > 0
        for j in abandoned:
            assert j.end_time is not None

    def test_abandonment_cascades_to_dependents(self):
        retry = RetryPolicy(max_attempts=0)
        # One long job certain to be killed, plus a dependency chain on it.
        jobs = [make_job(1, nodes=8, runtime=2000.0),
                make_job(2, submit=1.0, runtime=50.0, deps={1}),
                make_job(3, submit=2.0, runtime=50.0, deps={2}),
                make_job(4, submit=3.0, runtime=50.0)]
        res, _ = run_sim(jobs, scenario=STORMY, retry=retry)
        by_id = {j.jid: j for j in res.jobs}
        assert by_id[1].state is JobState.ABANDONED
        assert by_id[2].state is JobState.ABANDONED
        assert by_id[3].state is JobState.ABANDONED
        assert by_id[4].state is JobState.COMPLETED

    def test_not_yet_submitted_dependent_abandoned_at_submit(self):
        retry = RetryPolicy(max_attempts=0)
        jobs = [make_job(1, nodes=8, runtime=2000.0),
                make_job(2, submit=50_000.0, runtime=50.0, deps={1})]
        res, _ = run_sim(jobs, scenario=STORMY, retry=retry)
        by_id = {j.jid: j for j in res.jobs}
        assert by_id[1].state is JobState.ABANDONED
        assert by_id[2].state is JobState.ABANDONED
        assert by_id[2].start_time is None


class TestCapacityAccounting:
    def test_capacity_never_negative(self):
        scenario = FaultScenario(seed=11, node_mtbf=300.0, node_mttr=900.0,
                                 nodes_per_failure=3, bb_mtbf=1000.0,
                                 bb_degrade_fraction=0.4, job_mtbf=800.0)
        jobs = [make_job(i, submit=float(20 * i), nodes=3, runtime=400.0,
                         bb=20.0) for i in range(15)]
        res, engine = run_sim(jobs, bb=100.0, scenario=scenario)
        cluster = engine.cluster
        assert cluster.nodes_free >= 0
        assert cluster.bb_free >= 0.0
        assert cluster.nodes_offline == 0 or cluster.nodes_offline <= 10
        assert all(j.state in (JobState.COMPLETED, JobState.ABANDONED)
                   for j in res.jobs)

    def test_capacity_series_recorded(self):
        jobs = [make_job(i, submit=float(10 * i), nodes=4, runtime=800.0)
                for i in range(12)]
        res, _ = run_sim(jobs, scenario=STORMY)
        assert res.recorder.has_capacity_series
        mean_online = res.recorder.nodes_online.mean(0.0, res.makespan)
        assert 0.0 < mean_online < 10.0   # failures took capacity offline

    def test_starts_partition_into_kills_and_completions(self):
        # Every start either completes or is killed — no double counting
        # between selected/forced/backfilled even across requeues.
        jobs = [make_job(i, submit=float(10 * i), nodes=4, runtime=800.0)
                for i in range(12)]
        res, _ = run_sim(jobs, scenario=STORMY)
        starts = (res.stats.selected_jobs + res.stats.forced_jobs +
                  res.stats.backfilled_jobs)
        completed = sum(1 for j in res.jobs if j.state is JobState.COMPLETED)
        assert starts == completed + res.stats.killed_jobs

    def test_ssd_tier_failures(self):
        scenario = FaultScenario(seed=4, node_mtbf=300.0, node_mttr=600.0,
                                 nodes_per_failure=2)
        jobs = [make_job(i, submit=float(10 * i), nodes=2, runtime=500.0,
                         ssd=64.0) for i in range(10)]
        res, engine = run_sim(jobs, nodes=8, scenario=scenario,
                              ssd_tiers={128.0: 4, 256.0: 4})
        assert res.stats.node_failures > 0
        assert all(j.state in (JobState.COMPLETED, JobState.ABANDONED)
                   for j in res.jobs)
        # Every repair landed: the pool's nominal shape is fully restored.
        assert engine.cluster.ssd_pool.total_per_tier() == {128.0: 4, 256.0: 4}


class TestStarvationUnderFaults:
    def test_forced_job_survives_node_failures(self):
        # The BB-hungry head job is starved by the constrained method, gets
        # forced, and must still complete even when failures keep shrinking
        # the machine underneath it.
        jobs = [make_job(1, nodes=2, runtime=50.0, bb=90.0)]
        jobs += [make_job(10 + i, submit=float(i), nodes=2, runtime=30.0,
                          bb=20.0) for i in range(30)]
        scenario = FaultScenario(seed=2, node_mtbf=200.0, node_mttr=100.0)
        res, _ = run_sim(
            jobs, bb=100.0, scenario=scenario,
            selector=make_selector("Constrained_CPU", generations=10, seed=0),
            window=WindowPolicy(size=3, starvation_bound=5))
        big = res.jobs[0]
        assert big.state is JobState.COMPLETED


class TestOptInDefault:
    def _trace(self):
        return [make_job(i, submit=float(i % 7), nodes=1 + i % 5,
                         runtime=30.0 + i, bb=float(i % 3) * 10.0)
                for i in range(25)]

    def _outcome(self, res):
        return [(j.jid, j.start_time, j.end_time, j.state) for j in res.jobs]

    def test_zero_rate_scenario_identical_to_no_faults(self):
        base, _ = run_sim(self._trace(), bb=100.0)
        zeroed, engine = run_sim(self._trace(), bb=100.0,
                                 scenario=FaultScenario())
        assert engine.faults is None       # disabled scenario dropped
        assert self._outcome(base) == self._outcome(zeroed)
        assert not zeroed.recorder.has_capacity_series

    def test_fault_runs_are_deterministic(self):
        def once():
            jobs = [make_job(i, submit=float(10 * i), nodes=4, runtime=800.0)
                    for i in range(12)]
            res, _ = run_sim(jobs, scenario=STORMY)
            return ([(j.jid, j.start_time, j.attempts) for j in res.jobs],
                    res.stats.killed_jobs, res.stats.node_failures)

        assert once() == once()

    def test_bbsched_selector_under_faults(self):
        scenario = FaultScenario(seed=6, node_mtbf=500.0, node_mttr=400.0)
        jobs = [make_job(i, submit=float(5 * i), nodes=2 + i % 4,
                         runtime=300.0, bb=float(i % 3) * 20.0)
                for i in range(15)]
        sel = make_selector("BBSched", generations=15, seed=1)
        res, _ = run_sim(jobs, bb=100.0, scenario=scenario, selector=sel)
        assert all(j.state is JobState.COMPLETED for j in res.jobs)
