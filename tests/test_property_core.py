"""Property-based tests for the MOO core (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.exhaustive import ExhaustiveSolver, bit_matrix
from repro.core.ga import MOGASolver, crowding_distance
from repro.core.gd import generational_distance, hypervolume_2d
from repro.core.pareto import _pairwise_mask, non_dominated_mask, pareto_front_2d
from repro.core.problem import SelectionProblem

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


# --- strategies -----------------------------------------------------------------

@st.composite
def selection_problems(draw, max_w=8):
    """Random small selection problems, always with a feasible empty set."""
    w = draw(st.integers(min_value=1, max_value=max_w))
    nodes = draw(st.lists(st.integers(1, 50), min_size=w, max_size=w))
    bbs = draw(st.lists(st.integers(0, 80), min_size=w, max_size=w))
    cap_n = draw(st.integers(1, 120))
    cap_b = draw(st.integers(0, 150))
    demands = np.array([[float(n), float(b)] for n, b in zip(nodes, bbs)])
    return SelectionProblem(demands, [float(cap_n), float(cap_b)])


@st.composite
def forced_selection_problems(draw, max_w=8):
    """Selection problems carrying a feasible (possibly empty) forced set."""
    base = draw(selection_problems(max_w=max_w))
    order = draw(st.permutations(list(range(base.w))))
    forced, total = [], np.zeros(base.n_objectives)
    for i in order:
        if len(forced) >= 3:
            break
        if ((total + base.demands[i]) <= base.capacities + 1e-9).all():
            forced.append(i)
            total += base.demands[i]
    return SelectionProblem(base.demands, base.capacities, forced=forced)


#: Matrices whose columns each hold pairwise-distinct values — crowding
#: distance's boundary-inf assignment is only well-defined up to argsort
#: ties, so permutation invariance is stated on tie-free inputs.
unique_column_matrices = st.integers(3, 25).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 10_000), min_size=n, max_size=n, unique=True),
        st.lists(st.integers(0, 10_000), min_size=n, max_size=n, unique=True),
    ).map(lambda cols: np.column_stack(cols).astype(float))
)


objective_matrices = st.integers(1, 40).flatmap(
    lambda n: st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)),
        min_size=n, max_size=n,
    ).map(lambda rows: np.array(rows, dtype=float))
)


# --- Pareto invariants --------------------------------------------------------------

class TestParetoProperties:
    @given(objective_matrices)
    @settings(**COMMON)
    def test_front_members_not_dominated(self, F):
        mask = non_dominated_mask(F)
        front = F[mask]
        for u in front:
            dominated = ((F >= u).all(axis=1) & (F > u).any(axis=1)).any()
            assert not dominated

    @given(objective_matrices)
    @settings(**COMMON)
    def test_non_front_members_are_dominated(self, F):
        mask = non_dominated_mask(F)
        for i in np.flatnonzero(~mask):
            dominated = ((F >= F[i]).all(axis=1) & (F > F[i]).any(axis=1)).any()
            assert dominated

    @given(objective_matrices)
    @settings(**COMMON)
    def test_2d_matches_general(self, F):
        fast = set(map(tuple, F[pareto_front_2d(F)]))
        slow = set(map(tuple, F[non_dominated_mask(F)]))
        assert fast == slow

    @given(objective_matrices)
    @settings(**COMMON)
    def test_2d_sweep_matches_pairwise_mask(self, F):
        """non_dominated_mask routes k=2 through the O(n log n) sweep;
        it must agree with the quadratic reference *per index* — set
        equality would miss a mishandled duplicate row."""
        assert np.array_equal(non_dominated_mask(F), _pairwise_mask(F))

    @given(objective_matrices)
    @settings(**COMMON)
    def test_2d_sweep_front_indices_match_pairwise(self, F):
        front = pareto_front_2d(F)
        assert sorted(front.tolist()) == np.flatnonzero(_pairwise_mask(F)).tolist()

    @given(objective_matrices, st.randoms(use_true_random=False))
    @settings(**COMMON)
    def test_permutation_invariant(self, F, rnd):
        perm = list(range(F.shape[0]))
        rnd.shuffle(perm)
        a = set(map(tuple, F[non_dominated_mask(F)]))
        G = F[perm]
        b = set(map(tuple, G[non_dominated_mask(G)]))
        assert a == b

    @given(objective_matrices)
    @settings(**COMMON)
    def test_front_never_empty(self, F):
        assert non_dominated_mask(F).any()


# --- problem / repair invariants -----------------------------------------------------

class TestProblemProperties:
    @given(selection_problems(), st.integers(0, 2**31 - 1))
    @settings(**COMMON, max_examples=40)
    def test_repair_always_feasible(self, problem, seed):
        rng = np.random.default_rng(seed)
        pop = rng.integers(0, 2, size=(16, problem.w), dtype=np.uint8)
        fixed = problem.repair(pop, seed)
        assert problem.feasible(fixed).all()

    @given(selection_problems(), st.integers(0, 2**31 - 1))
    @settings(**COMMON, max_examples=40)
    def test_repair_only_clears_genes(self, problem, seed):
        rng = np.random.default_rng(seed)
        pop = rng.integers(0, 2, size=(8, problem.w), dtype=np.uint8)
        fixed = problem.repair(pop, seed)
        # Without forced genes, repair may only turn 1s into 0s.
        assert (fixed <= pop).all()

    @given(selection_problems())
    @settings(**COMMON, max_examples=40)
    def test_greedy_chromosomes_feasible(self, problem):
        seeds = problem.greedy_chromosomes()
        if seeds.shape[0]:
            assert problem.feasible(seeds).all()

    @given(selection_problems(), st.integers(0, 2**31 - 1))
    @settings(**COMMON, max_examples=30)
    def test_random_population_feasible(self, problem, seed):
        pop = problem.random_population(12, seed)
        assert pop.shape == (12, problem.w)
        assert problem.feasible(pop).all()

    @given(forced_selection_problems(), st.integers(0, 2**31 - 1),
           st.booleans())
    @settings(**COMMON, max_examples=40)
    def test_repair_feasible_and_forced_intact_both_modes(
        self, problem, seed, fast
    ):
        """Both repair modes end feasible with forced genes asserted."""
        rng = np.random.default_rng(seed)
        pop = rng.integers(0, 2, size=(12, problem.w), dtype=np.uint8)
        fixed = problem.repair(pop, seed, fast=fast)
        assert problem.feasible(fixed).all()
        if problem.forced:
            assert (fixed[:, list(problem.forced)] == 1).all()
        # Genes are only ever cleared, except forced re-assertion.
        unforced = [i for i in range(problem.w) if i not in problem.forced]
        assert (fixed[:, unforced] <= pop[:, unforced]).all()

    @given(forced_selection_problems(), st.integers(0, 2**31 - 1),
           st.booleans())
    @settings(**COMMON, max_examples=40)
    def test_repair_idempotent(self, problem, seed, fast):
        """Repairing an already-feasible population changes nothing."""
        rng = np.random.default_rng(seed)
        pop = rng.integers(0, 2, size=(10, problem.w), dtype=np.uint8)
        fixed = problem.repair(pop, seed, fast=fast)
        again = problem.repair(fixed, seed + 1, fast=fast)
        assert (again == fixed).all()


# --- GA / exhaustive invariants --------------------------------------------------------

class TestSolverProperties:
    @given(selection_problems(max_w=6), st.integers(0, 1000))
    @settings(**COMMON, max_examples=15)
    def test_ga_solutions_feasible_and_nondominated(self, problem, seed):
        result = MOGASolver(generations=30, population=8, seed=seed).solve(problem)
        assert problem.feasible(result.genes).all()
        if len(result) > 1:
            assert non_dominated_mask(result.objectives).all()

    @given(selection_problems(max_w=6), st.integers(0, 1000))
    @settings(**COMMON, max_examples=10)
    def test_ga_front_within_true_front(self, problem, seed):
        """Every GA objective vector is dominated-or-equal by the true front."""
        truth = ExhaustiveSolver().solve(problem)
        approx = MOGASolver(generations=40, population=8, seed=seed).solve(problem)
        for u in approx.objectives:
            assert ((truth.objectives >= u - 1e-9).all(axis=1)).any()

    @given(selection_problems(max_w=6))
    @settings(**COMMON, max_examples=15)
    def test_exhaustive_front_dominates_everything(self, problem):
        truth = ExhaustiveSolver().solve(problem)
        pop = bit_matrix(0, 1 << problem.w, problem.w)
        pop = pop[problem.feasible(pop)]
        F = problem.evaluate(pop)
        for f in F:
            assert ((truth.objectives >= f - 1e-9).all(axis=1)).any()

    @given(st.integers(1, 12))
    @settings(**COMMON)
    def test_bit_matrix_is_binary_expansion(self, w):
        M = bit_matrix(0, 1 << w, w)
        codes = (M.astype(np.int64) * (1 << np.arange(w))).sum(axis=1)
        assert (codes == np.arange(1 << w)).all()

    @given(selection_problems(max_w=10), st.integers(0, 2**31 - 1),
           st.sampled_from(["age", "crowding"]))
    @settings(**COMMON, max_examples=15)
    def test_eval_cache_never_changes_solve(self, problem, seed, selection):
        """Memoized evaluation is byte-identical to the reference path,
        across random problems, window widths, seeds, and both survival
        schemes (the broad-stroke twin of tests/test_differential.py)."""
        kw = dict(generations=20, population=8, selection=selection, seed=seed)
        on = MOGASolver(eval_cache=True, **kw).solve(problem)
        off = MOGASolver(eval_cache=False, **kw).solve(problem)
        assert on.genes.tobytes() == off.genes.tobytes()
        assert on.objectives.tobytes() == off.objectives.tobytes()


# --- crowding-distance invariants ---------------------------------------------------

class TestCrowdingProperties:
    @given(unique_column_matrices, st.randoms(use_true_random=False))
    @settings(**COMMON)
    def test_permutation_invariant(self, F, rnd):
        """Each row's crowding distance depends on values, not row order."""
        perm = list(range(F.shape[0]))
        rnd.shuffle(perm)
        base = crowding_distance(F)
        shuffled = crowding_distance(F[perm])
        assert np.array_equal(shuffled, base[perm])

    @given(unique_column_matrices)
    @settings(**COMMON)
    def test_boundaries_infinite_interior_finite(self, F):
        dist = crowding_distance(F)
        assert dist.shape == (F.shape[0],)
        for m in range(F.shape[1]):
            assert np.isinf(dist[np.argmin(F[:, m])])
            assert np.isinf(dist[np.argmax(F[:, m])])
        assert (dist[np.isfinite(dist)] >= 0).all()


# --- quality metric invariants --------------------------------------------------------

class TestQualityMetricProperties:
    @given(objective_matrices)
    @settings(**COMMON)
    def test_gd_zero_against_self(self, F):
        assert generational_distance(F, F) == pytest.approx(0.0)

    @given(objective_matrices, st.tuples(st.integers(0, 5), st.integers(0, 5)))
    @settings(**COMMON)
    def test_gd_nonnegative(self, F, shift):
        G = F + np.asarray(shift, dtype=float)
        assert generational_distance(F, G) >= 0.0

    @given(objective_matrices, st.tuples(st.integers(1, 20), st.integers(1, 20)))
    @settings(**COMMON)
    def test_hypervolume_monotone_in_points(self, F, extra):
        base = hypervolume_2d(F)
        grown = hypervolume_2d(np.vstack([F, np.asarray(extra, dtype=float)]))
        assert grown >= base - 1e-12
