"""Process-pool sweep execution and supervision."""

import os
import time

import pytest

from repro.errors import ConfigurationError, TaskError
from repro.parallel import DEFAULT_POOL_BACKOFF, default_workers, parallel_map
from repro.resilience import BackoffPolicy

#: Fast wall-clock backoff so retry tests don't sleep for real.
FAST = BackoffPolicy(initial=0.01, factor=1.0, max_delay=0.01)


def square(x):
    return x * x


def add(a, b):
    return a + b


def boom(x):
    raise ValueError(f"boom {x}")


def crash(x):
    os._exit(17)  # kills the worker process outright


def nap(seconds):
    time.sleep(seconds)
    return seconds


def flaky(path, x):
    """Fails on first invocation, succeeds on the second (marker file)."""
    marker = f"{path}/attempt_{x}"
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("1")
        raise ValueError(f"first attempt {x}")
    return x * x


class TestDefaultWorkers:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigurationError) as excinfo:
            default_workers()
        # The chained context names the real parse failure.
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_env_nonpositive(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ConfigurationError):
            default_workers()

    def test_default_at_least_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() >= 1


class TestParallelMap:
    def test_serial(self):
        assert parallel_map(square, [(1,), (2,), (3,)], workers=1) == [1, 4, 9]

    def test_order_preserved(self):
        assert parallel_map(square, [(i,) for i in range(20)], workers=1) == \
            [i * i for i in range(20)]

    def test_multiple_args(self):
        assert parallel_map(add, [(1, 2), (3, 4)], workers=1) == [3, 7]

    def test_parallel_workers(self):
        # Runs through the process pool when workers > 1 and tasks > 1.
        assert parallel_map(square, [(1,), (2,), (3,)], workers=2) == [1, 4, 9]

    def test_single_task_stays_serial(self):
        assert parallel_map(square, [(5,)], workers=8) == [25]

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            parallel_map(square, [(1,)], workers=0)

    def test_invalid_retries(self):
        with pytest.raises(ConfigurationError):
            parallel_map(square, [(1,)], workers=1, retries=-1)

    def test_invalid_timeout(self):
        with pytest.raises(ConfigurationError):
            parallel_map(square, [(1,)], workers=1, timeout=0.0)

    def test_empty(self):
        assert parallel_map(square, [], workers=1) == []


class TestFailureContext:
    """A failing task must name itself, not raise from nowhere."""

    def test_serial_wraps_with_task_context(self):
        with pytest.raises(TaskError) as excinfo:
            parallel_map(boom, [(1,)], workers=1)
        err = excinfo.value
        assert err.index == 0
        assert err.task == (1,)
        assert err.attempts == 1
        assert "boom 1" in str(err)
        assert isinstance(err.__cause__, ValueError)

    def test_parallel_wraps_with_task_context(self):
        with pytest.raises(TaskError) as excinfo:
            parallel_map(boom, [(7,), (8,)], workers=2)
        err = excinfo.value
        assert err.task in ((7,), (8,))
        assert "boom" in err.traceback_text

    def test_seed_visible_in_task(self):
        # Grid tasks carry their seed as an argument; the error exposes it.
        with pytest.raises(TaskError) as excinfo:
            parallel_map(boom, [(1234,)], workers=1)
        assert excinfo.value.task == (1234,)


class TestRetries:
    def test_serial_retry_succeeds(self, tmp_path):
        results = parallel_map(flaky, [(str(tmp_path), 3)], workers=1,
                               retries=1, backoff=FAST)
        assert results == [9]

    def test_parallel_retry_succeeds(self, tmp_path):
        tasks = [(str(tmp_path), 2), (str(tmp_path), 3)]
        results = parallel_map(flaky, tasks, workers=2, retries=2, backoff=FAST)
        assert results == [4, 9]

    def test_retry_budget_exhausted(self):
        with pytest.raises(TaskError) as excinfo:
            parallel_map(boom, [(5,)], workers=1, retries=2, backoff=FAST)
        assert excinfo.value.attempts == 3

    def test_crashed_worker_is_retried(self, tmp_path):
        # One task crashes its worker once, then succeeds; a healthy task
        # rides along and must survive the pool rebuild unharmed.
        results = parallel_map(
            crash_once, [(str(tmp_path), 6), (str(tmp_path), 0)],
            workers=2, retries=1, backoff=FAST)
        assert results == [36, 0]

    def test_crashed_worker_exhausts_budget(self):
        with pytest.raises(TaskError) as excinfo:
            parallel_map(crash, [(1,), (2,)], workers=2, retries=0,
                         backoff=FAST)
        assert "died" in str(excinfo.value)

    def test_crash_does_not_consume_retry_budget(self, tmp_path):
        # PR 3's contract, pinned: a pool break is a *free* requeue — the
        # crash-once task and its co-resident victim both succeed with
        # retries=0, because no task is charged an attempt for a crash
        # it merely witnessed (and a one-off crasher is exonerated by its
        # clean isolated re-run).
        results = parallel_map(
            crash_once, [(str(tmp_path), 3), (str(tmp_path), 0)],
            workers=2, retries=0, backoff=FAST)
        assert results == [9, 0]

    def test_healthy_victim_survives_crash_looper(self, tmp_path):
        # A deterministic crasher must fail alone: its co-resident victim
        # keeps its full budget and completes despite repeated pool
        # breaks it had no part in (suspect isolation names the crasher).
        tasks = [("crash-loop",), (str(tmp_path),)]
        with pytest.raises(TaskError) as excinfo:
            parallel_map(crash_or_slow, tasks, workers=2, retries=1,
                         backoff=FAST)
        assert excinfo.value.index == 0
        # The victim completed (its worker wrote the marker) even though
        # the crasher next door broke the pool on every one of its runs.
        assert (tmp_path / "victim_done").exists()


def crash_once(path, x):
    """Crashes the worker on first invocation, then returns x*x."""
    marker = f"{path}/crash_{x}"
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("1")
        os._exit(17)
    return x * x


def crash_or_slow(tag):
    """Crash-loop task, or a slow victim that records its completion."""
    if tag == "crash-loop":
        time.sleep(0.2)  # let the victim get airborne before the kill
        os._exit(17)
    time.sleep(1.0)
    with open(f"{tag}/victim_done", "w") as fh:
        fh.write("1")
    return tag


class TestTimeouts:
    def test_hung_task_times_out(self):
        with pytest.raises(TaskError) as excinfo:
            parallel_map(nap, [(0.01,), (5.0,)], workers=2,
                         timeout=0.5, backoff=FAST)
        assert "timeout" in str(excinfo.value)
        assert excinfo.value.task == (5.0,)

    def test_fast_tasks_unaffected_by_timeout(self):
        assert parallel_map(square, [(1,), (2,), (3,)], workers=2,
                            timeout=30.0) == [1, 4, 9]


class TestOnResult:
    def test_serial_on_result_order(self):
        seen = []
        parallel_map(square, [(1,), (2,), (3,)], workers=1,
                     on_result=lambda i, r: seen.append((i, r)))
        assert seen == [(0, 1), (1, 4), (2, 9)]

    def test_parallel_on_result_complete_coverage(self):
        seen = {}
        parallel_map(square, [(i,) for i in range(8)], workers=2,
                     on_result=lambda i, r: seen.__setitem__(i, r))
        assert seen == {i: i * i for i in range(8)}

    def test_on_result_fires_before_failure_propagates(self):
        # Completed tasks are persisted even when a later one fails.
        seen = []
        with pytest.raises(TaskError):
            parallel_map(boom_on_zero, [(1,), (2,), (0,)], workers=1,
                         on_result=lambda i, r: seen.append(i))
        assert seen == [0, 1]


def boom_on_zero(x):
    if x == 0:
        raise ValueError("zero")
    return x


class TestBackoffDefaults:
    def test_default_pool_backoff_is_wall_clock_scale(self):
        assert DEFAULT_POOL_BACKOFF.initial < 1.0
        assert DEFAULT_POOL_BACKOFF.delay(1) == DEFAULT_POOL_BACKOFF.initial
