"""Process-pool sweep execution."""

import os

import pytest

from repro.errors import ConfigurationError
from repro.parallel import default_workers, parallel_map


def square(x):
    return x * x


def add(a, b):
    return a + b


def boom(x):
    raise ValueError(f"boom {x}")


class TestDefaultWorkers:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigurationError):
            default_workers()

    def test_env_nonpositive(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ConfigurationError):
            default_workers()

    def test_default_at_least_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() >= 1


class TestParallelMap:
    def test_serial(self):
        assert parallel_map(square, [(1,), (2,), (3,)], workers=1) == [1, 4, 9]

    def test_order_preserved(self):
        assert parallel_map(square, [(i,) for i in range(20)], workers=1) == \
            [i * i for i in range(20)]

    def test_multiple_args(self):
        assert parallel_map(add, [(1, 2), (3, 4)], workers=1) == [3, 7]

    def test_parallel_workers(self):
        # Runs through the process pool when workers > 1 and tasks > 1.
        assert parallel_map(square, [(1,), (2,), (3,)], workers=2) == [1, 4, 9]

    def test_single_task_stays_serial(self):
        assert parallel_map(square, [(5,)], workers=8) == [25]

    def test_exception_propagates(self):
        with pytest.raises(ValueError):
            parallel_map(boom, [(1,)], workers=1)

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            parallel_map(square, [(1,)], workers=0)

    def test_empty(self):
        assert parallel_map(square, [], workers=1) == []
