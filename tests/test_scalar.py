"""Scalarized GA used by the weighted and constrained methods."""

import numpy as np
import pytest

from repro.core.exhaustive import bit_matrix
from repro.core.problem import SelectionProblem
from repro.core.scalar import ScalarGASolver
from repro.errors import SolverError
from repro.simulator.job import Job


def make_job(jid, nodes, bb):
    return Job(jid=jid, submit_time=0.0, runtime=10.0, walltime=10.0,
               nodes=nodes, bb=bb)


def table1_problem():
    jobs = [make_job(1, 80, 20.0), make_job(2, 10, 85.0),
            make_job(3, 40, 5.0), make_job(4, 10, 0.0), make_job(5, 20, 0.0)]
    return SelectionProblem.from_window(jobs, 100, 100.0)


def brute_force_best(problem, coeffs):
    pop = bit_matrix(0, 1 << problem.w, problem.w)
    pop = pop[problem.feasible(pop)]
    fitness = problem.evaluate(pop) @ np.asarray(coeffs)
    return float(fitness.max())


class TestConstruction:
    def test_empty_coeffs_rejected(self):
        with pytest.raises(SolverError):
            ScalarGASolver([])

    def test_matrix_coeffs_rejected(self):
        with pytest.raises(SolverError):
            ScalarGASolver([[1.0, 2.0]])


class TestBest:
    def test_constrained_cpu_finds_optimum(self):
        """coeffs [1,0] = Constrained_CPU: max node utilization."""
        problem = table1_problem()
        best = ScalarGASolver([1.0, 0.0], generations=200, seed=0).best(problem)
        assert best.objectives[0] == brute_force_best(problem, [1.0, 0.0]) == 100.0

    def test_constrained_bb_finds_optimum(self):
        problem = table1_problem()
        best = ScalarGASolver([0.0, 1.0], generations=200, seed=0).best(problem)
        assert best.objectives[1] == brute_force_best(problem, [0.0, 1.0]) == 90.0

    def test_weighted_5050_finds_optimum(self):
        problem = table1_problem()
        coeffs = [0.5 / 100.0, 0.5 / 100.0]
        best = ScalarGASolver(coeffs, generations=200, seed=0).best(problem)
        assert best.fitness == pytest.approx(brute_force_best(problem, coeffs))

    def test_weighted_8020_picks_solution2(self):
        """The Table 1 weighted method (80/20) selects J1+J5."""
        problem = table1_problem()
        coeffs = [0.8 / 100.0, 0.2 / 100.0]
        best = ScalarGASolver(coeffs, generations=200, seed=0).best(problem)
        assert best.genes.tolist() == [1, 0, 0, 0, 1]

    def test_solution_feasible(self):
        problem = table1_problem()
        best = ScalarGASolver([1.0, 1.0], generations=50, seed=1).best(problem)
        assert problem.feasible(best.genes[None, :])[0]

    def test_coeff_dimension_mismatch(self):
        with pytest.raises(SolverError):
            ScalarGASolver([1.0, 2.0, 3.0], generations=5, seed=0).best(
                table1_problem())

    def test_deterministic(self):
        problem = table1_problem()
        a = ScalarGASolver([1.0, 0.5], generations=30, seed=5).best(problem)
        b = ScalarGASolver([1.0, 0.5], generations=30, seed=5).best(problem)
        assert a.genes.tolist() == b.genes.tolist()

    def test_empty_window(self):
        problem = SelectionProblem(np.zeros((0, 2)), [1.0, 1.0])
        best = ScalarGASolver([1.0, 0.0], generations=5, seed=0).best(problem)
        assert best.genes.size == 0
        assert best.fitness == 0.0
