"""ASCII report rendering."""

import pytest

from repro.experiments.report import (
    bar_chart,
    format_table,
    hours,
    improvement_vs,
    percent,
    pivot_table,
)


class TestFormatTable:
    def test_alignment(self):
        out = format_table([["a", 1], ["bbbb", 22]], ["col", "n"])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        out = format_table([["x"]], ["h"], title="T")
        assert out.splitlines()[0] == "T"

    def test_header_rule(self):
        out = format_table([["x"]], ["h"])
        assert set(out.splitlines()[1]) <= {"-", "+"}


class TestPivotTable:
    def test_missing_cells_dashed(self):
        out = pivot_table({"r": {"a": 1.0}}, columns=["a", "b"])
        assert "-" in out.splitlines()[-1]

    def test_custom_format(self):
        out = pivot_table({"r": {"a": 0.5}}, columns=["a"], fmt=percent)
        assert "50.00%" in out


class TestBarChart:
    def test_bars_scale(self):
        out = bar_chart({"big": 10.0, "small": 1.0})
        big_line, small_line = out.splitlines()
        assert big_line.count("#") > small_line.count("#")

    def test_empty(self):
        assert bar_chart({}, title="T") == "T"

    def test_zero_values(self):
        out = bar_chart({"z": 0.0})
        assert "#" not in out

    def test_max_value_override(self):
        out = bar_chart({"a": 1.0}, max_value=10.0)
        assert out.count("#") == 4  # 1/10 of BAR_WIDTH=40


class TestFormatters:
    def test_percent(self):
        assert percent(0.1234) == "12.34%"

    def test_hours(self):
        assert hours(7200.0) == "2.00h"


class TestImprovementVs:
    def test_higher_is_better(self):
        out = improvement_vs({"base": 10.0, "x": 12.0}, "base")
        assert out["x"] == pytest.approx(0.2)
        assert out["base"] == 0.0

    def test_lower_is_better(self):
        out = improvement_vs({"base": 10.0, "x": 8.0}, "base",
                             lower_is_better=True)
        assert out["x"] == pytest.approx(0.2)

    def test_zero_baseline(self):
        out = improvement_vs({"base": 0.0, "x": 5.0}, "base")
        assert out["x"] == 0.0
