"""Table 1: the illustrative example — every method's selection decision."""

from conftest import run_once

from repro.experiments import table1


def test_bench_table1(benchmark, scale, save_result):
    result = run_once(benchmark, table1.run, generations=500)
    text = table1.render(result)
    save_result("table1", text)

    rows = {r.method: r for r in result.rows}
    # Table 1(b): the naive method strands 80% of the burst buffer.
    assert rows["Baseline"].selected == ("J1",)
    # Constrained_CPU / Weighted_CPU / Bin_Packing reach Solution 2.
    for m in ("Constrained_CPU", "Weighted_CPU", "Bin_Packing"):
        assert rows[m].node_utilization == 1.0
        assert rows[m].bb_utilization == 0.2
    # BBSched's Pareto trade picks Solution 3.
    assert rows["BBSched"].selected == ("J2", "J3", "J4", "J5")
    # The exhaustive Pareto set is exactly {Solution 2, Solution 3}.
    assert {names for names, _, _ in result.pareto} == {
        ("J1", "J5"), ("J2", "J3", "J4", "J5")
    }
