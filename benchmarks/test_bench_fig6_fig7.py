"""Figures 6 & 7: node and burst-buffer usage, 8 methods × 10 workloads."""

import numpy as np
from conftest import run_once

from repro.experiments import fig6_7


def test_bench_fig6_fig7(benchmark, scale, save_result):
    result = run_once(benchmark, fig6_7.run, scale)
    save_result("fig6_7", fig6_7.render(result))

    # Regime check (the evaluation's premise): BB pressure rises from
    # Original to S4, and the S4 workloads are burst-buffer-bound.
    for machine in ("Cori", "Theta"):
        bb = {w: result.bb_usage[w]["Baseline"] for w in result.workloads
              if w.startswith(machine)}
        assert bb[f"{machine}-S4"] > bb[f"{machine}-S1"]
        assert bb[f"{machine}-S4"] > 0.6
    # Shape: on the BB-bound workloads the optimizing methods beat the
    # naive baseline on burst-buffer usage...
    for w in ("Cori-S4", "Theta-S4"):
        best_opt = max(result.bb_usage[w][m]
                       for m in result.methods if m != "Baseline")
        assert best_opt >= result.bb_usage[w]["Baseline"] - 0.02
    # ...and BBSched never falls behind the baseline materially on
    # either resource across all ten workloads.
    for w in result.workloads:
        assert result.node_usage[w]["BBSched"] >= \
            result.node_usage[w]["Baseline"] - 0.05
        assert result.bb_usage[w]["BBSched"] >= \
            result.bb_usage[w]["Baseline"] - 0.05
