"""Table 3: BBSched sensitivity to the window size (w = 10 / 20 / 50)."""

from conftest import run_once

from repro.experiments import table3


def test_bench_table3(benchmark, scale, save_result):
    result = run_once(benchmark, table3.run, scale)
    save_result("table3", table3.render(result))

    for wl in result.workloads:
        u10 = result.metric(wl, 10, "node_usage")
        u20 = result.metric(wl, 20, "node_usage")
        u50 = result.metric(wl, 50, "node_usage")
        # Paper's finding: the w=10 → w=20 step brings the significant
        # improvement; w=20 → w=50 flattens.  At simulation scale we
        # assert the weak ordering (w=50 no worse than w=10 beyond noise)
        # and the flattening (the second step is not a big regression).
        assert u50 >= u10 - 0.05
        assert u50 >= u20 - 0.05
