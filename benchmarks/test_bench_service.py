"""Service throughput and crash-recovery latency under the chaos harness.

Two seeded plans against a real ``repro serve`` daemon subprocess:

* **healthy** — no injected faults; measures sustained request
  throughput through the full admission → pool → journal path, plus
  cold-start time.
* **chaos** — worker crashes, a deadline-tripping hang, one daemon
  SIGKILL mid-backlog with a torn journal tail; measures recovery
  readiness and backlog-drain time, and asserts the exactly-once
  contract held.

A second test scales the same workload *out*: 200+ keyed requests
submitted concurrently through the consistent-hash ``ShardRouter``
across 1, 2, and 4 shard daemons, each fleet size measured healthy and
again with one shard SIGKILLed a quarter of the way in and recovered at
the halfway mark (failover + journal replay on the critical path).

Both distill into ``results/BENCH_service.json`` so resilience
regressions diff as JSON, like the checkpoint and perf benches.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from chaos import (  # noqa: E402
    ChaosPlan,
    NetworkChaosHarness,
    NetworkChaosPlan,
    run_chaos,
)

from conftest import RESULTS_DIR  # noqa: E402


def test_service_throughput_and_recovery(scale, tmp_path, save_result):
    healthy_plan = ChaosPlan(
        seed=0, requests=8, crash_fraction=0.0, hang_fraction=0.0,
        daemon_kills=0, scale=scale.name, workers=2, deadline=120.0,
        timeout=600.0,
    )
    healthy = run_chaos(healthy_plan, workdir=str(tmp_path / "healthy"))
    assert healthy["outcomes"] == {"done": healthy_plan.requests}
    assert healthy["audit"]["exactly_once"]
    assert not healthy["audit"]["expectation_mismatches"]

    # The hang deadline bounds how long an injected hang can sit before
    # its worker is SIGKILLed; at smoke scale no honest request runs
    # anywhere near it, so keep it tight or a replayed hang dominates
    # the drain measurement.
    hang_deadline = 15.0 if scale.name == "smoke" else 120.0
    chaos_plan = ChaosPlan(
        seed=0, requests=6, crash_fraction=0.34, hang_fraction=0.17,
        daemon_kills=1, truncate_tail=True, scale=scale.name, workers=2,
        deadline=hang_deadline, retries=3, timeout=600.0,
    )
    chaos = run_chaos(chaos_plan, workdir=str(tmp_path / "chaos"))
    assert chaos["outcomes"] == {"done": chaos_plan.requests}
    assert chaos["daemon_kills"] == 1
    assert chaos["audit"]["exactly_once"]
    assert not chaos["audit"]["expectation_mismatches"]

    startup = healthy["recoveries"][0]["ready_s"]
    throughput = healthy_plan.requests / (healthy["elapsed_s"] - startup)
    restarts = chaos["recoveries"][1:]  # [0] is the cold start
    ready = [r["ready_s"] for r in restarts]
    drain = [r["drain_s"] for r in restarts]
    injected = sum(1 for r in chaos["per_request"].values() if r["chaos"])
    doc = {
        "scale": scale.name,
        "workloads": list(healthy_plan.workloads),
        "method": healthy_plan.methods[0],
        "workers": healthy_plan.workers,
        "healthy_requests": healthy_plan.requests,
        "healthy_elapsed_s": round(healthy["elapsed_s"], 3),
        "startup_ready_s": round(startup, 3),
        "throughput_rps": round(throughput, 3),
        "chaos_requests": chaos_plan.requests,
        "chaos_injected_faults": injected,
        "chaos_outcomes": chaos["outcomes"],
        "chaos_elapsed_s": round(chaos["elapsed_s"], 3),
        "daemon_kills": chaos["daemon_kills"],
        "tails_torn": chaos["tails_torn"],
        "recovery_ready_s": [round(v, 3) for v in ready],
        "recovery_drain_s": [round(v, 3) for v in drain],
        "recovery_ready_max_s": round(max(ready), 3),
        "recovery_ready_p99_s": round(
            sorted(ready)[min(len(ready) - 1, int(0.99 * len(ready)))], 3),
        "exactly_once": True,
        "journal_tail_dropped": chaos["audit"]["dropped_tail"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_service.json"
    if out.exists():  # keep the sharded section from a previous run
        previous = json.loads(out.read_text())
        if "sharded" in previous:
            doc["sharded"] = previous["sharded"]
    out.write_text(json.dumps(doc, indent=2) + "\n")
    save_result(
        "service_resilience",
        "simulation service under the deterministic chaos harness "
        "(seed 0, scale %s)\n"
        "healthy throughput : %.2f req/s (%d requests, %d workers, "
        "%.2fs cold start)\n"
        "chaos plan         : %d requests, %d injected fault(s), "
        "1 daemon SIGKILL, torn tail\n"
        "outcomes           : %s (exactly-once audit passed)\n"
        "recovery readiness : %s s\n"
        "recovery drain     : %s s"
        % (scale.name, throughput, healthy_plan.requests,
           healthy_plan.workers, startup,
           chaos_plan.requests, injected, chaos["outcomes"],
           ", ".join(f"{v:.2f}" for v in ready),
           ", ".join(f"{v:.2f}" for v in drain)),
    )


def _run_sharded(n_shards, requests, workdir, scale_name, kill_recover):
    """One sharded configuration: submit everything, then drain.

    All ``requests`` submits are keyed and in flight concurrently (the
    admission queue holds them; ``high_water`` is sized above the
    batch).  With ``kill_recover`` shard 0 is SIGKILLed (whole process
    group) a quarter of the way through submission and restarted at the
    halfway mark — submits keyed to it fail over meanwhile, and its
    accepted backlog is replayed from the journal on restart.
    """
    plan = NetworkChaosPlan(
        seed=0, requests=requests, shards=n_shards, scale=scale_name,
        workers=2, shard_kills=0, blackholes=0, slow_loris=0,
        torn_frames=0, corrupt_shm=False, high_water=max(512, 4 * requests),
        client_timeout=30.0, timeout=900.0)
    harness = NetworkChaosHarness(plan, workdir=str(workdir))
    workloads = list(plan.workloads)
    kill_at, restart_at = requests // 4, requests // 2
    try:
        ready = [harness.start_shard(i) for i in range(n_shards)]
        pending_restart = []
        t0 = time.monotonic()
        routed = []
        for n in range(requests):
            for shard, at in list(pending_restart):
                if n >= at:
                    pending_restart.remove((shard, at))
                    harness.start_shard(shard)
            if kill_recover and n == kill_at:
                harness.kill_shard(0)
                pending_restart.append((0, restart_at))
            routed.append(harness._submit_resilient({
                "workload": workloads[n % len(workloads)],
                "method": "Baseline",
                "scale": scale_name,
                "seed": 1000 + n,
            }, pending_restart))
        submit_s = time.monotonic() - t0
        for shard, _ in pending_restart:
            harness.start_shard(shard)
        results = harness.router.wait_all(routed, timeout=600.0, poll=0.1)
        elapsed = time.monotonic() - t0
        states = {key: status["state"] for key, status in results.items()}
        assert set(states.values()) == {"done"}, states
        audit = harness.audit(routed)
        assert audit["exactly_once"]
        assert not audit["pending_keys"]
        assert audit["keys_audited"] >= len(routed)
        for i in range(n_shards):
            client = harness.router.clients[harness.endpoints[i]]
            try:
                client.shutdown(mode="now")
                proc = harness.procs[i]
                if proc is not None:
                    proc.wait(30)
            except Exception:
                pass
        return {
            "shards": n_shards,
            "requests": requests,
            "kill_recover": kill_recover,
            "startup_ready_max_s": round(max(ready), 3),
            "submit_s": round(submit_s, 3),
            "elapsed_s": round(elapsed, 3),
            "throughput_rps": round(requests / elapsed, 3),
            "failovers": harness.router.failovers,
            "adoptions": harness.router.adoptions,
            "exactly_once": True,
        }
    finally:
        for i in range(n_shards):
            proc = harness.procs[i]
            if proc is not None and proc.poll() is None:
                harness.kill_shard(i)


def test_sharded_throughput(scale, tmp_path, save_result):
    requests = 200
    configs = [(1, False), (2, False), (4, False),
               (1, True), (2, True), (4, True)]
    rows = []
    for index, (n_shards, kill_recover) in enumerate(configs):
        rows.append(_run_sharded(
            n_shards, requests, tmp_path / f"cfg{index}", scale.name,
            kill_recover))

    out = RESULTS_DIR / "BENCH_service.json"
    doc = json.loads(out.read_text()) if out.exists() else {}
    doc["sharded"] = {
        "requests": requests,
        "method": "Baseline",
        "workers_per_shard": 2,
        "configs": rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n")

    lines = [
        "sharded service throughput (seed 0, scale %s, %d keyed requests, "
        "2 workers/shard)" % (scale.name, requests),
        "shards  killed  elapsed_s  throughput_rps  failovers",
    ]
    for row in rows:
        lines.append("%6d  %6s  %9.2f  %14.2f  %9d" % (
            row["shards"], "yes" if row["kill_recover"] else "no",
            row["elapsed_s"], row["throughput_rps"], row["failovers"]))
    lines.append("every configuration audited exactly-once across its "
                 "shard journals")
    save_result("service_sharded", "\n".join(lines))
