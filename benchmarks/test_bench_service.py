"""Service throughput and crash-recovery latency under the chaos harness.

Two seeded plans against a real ``repro serve`` daemon subprocess:

* **healthy** — no injected faults; measures sustained request
  throughput through the full admission → pool → journal path, plus
  cold-start time.
* **chaos** — worker crashes, a deadline-tripping hang, one daemon
  SIGKILL mid-backlog with a torn journal tail; measures recovery
  readiness and backlog-drain time, and asserts the exactly-once
  contract held.

Distilled into ``results/BENCH_service.json`` so resilience regressions
diff as JSON, like the checkpoint and perf benches.
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from chaos import ChaosPlan, run_chaos  # noqa: E402

from conftest import RESULTS_DIR  # noqa: E402


def test_service_throughput_and_recovery(scale, tmp_path, save_result):
    healthy_plan = ChaosPlan(
        seed=0, requests=8, crash_fraction=0.0, hang_fraction=0.0,
        daemon_kills=0, scale=scale.name, workers=2, deadline=120.0,
        timeout=600.0,
    )
    healthy = run_chaos(healthy_plan, workdir=str(tmp_path / "healthy"))
    assert healthy["outcomes"] == {"done": healthy_plan.requests}
    assert healthy["audit"]["exactly_once"]
    assert not healthy["audit"]["expectation_mismatches"]

    chaos_plan = ChaosPlan(
        seed=0, requests=6, crash_fraction=0.34, hang_fraction=0.17,
        daemon_kills=1, truncate_tail=True, scale=scale.name, workers=2,
        deadline=120.0, retries=3, timeout=600.0,
    )
    chaos = run_chaos(chaos_plan, workdir=str(tmp_path / "chaos"))
    assert chaos["outcomes"] == {"done": chaos_plan.requests}
    assert chaos["daemon_kills"] == 1
    assert chaos["audit"]["exactly_once"]
    assert not chaos["audit"]["expectation_mismatches"]

    startup = healthy["recoveries"][0]["ready_s"]
    throughput = healthy_plan.requests / (healthy["elapsed_s"] - startup)
    restarts = chaos["recoveries"][1:]  # [0] is the cold start
    ready = [r["ready_s"] for r in restarts]
    drain = [r["drain_s"] for r in restarts]
    injected = sum(1 for r in chaos["per_request"].values() if r["chaos"])
    doc = {
        "scale": scale.name,
        "workloads": list(healthy_plan.workloads),
        "method": healthy_plan.methods[0],
        "workers": healthy_plan.workers,
        "healthy_requests": healthy_plan.requests,
        "healthy_elapsed_s": round(healthy["elapsed_s"], 3),
        "startup_ready_s": round(startup, 3),
        "throughput_rps": round(throughput, 3),
        "chaos_requests": chaos_plan.requests,
        "chaos_injected_faults": injected,
        "chaos_outcomes": chaos["outcomes"],
        "chaos_elapsed_s": round(chaos["elapsed_s"], 3),
        "daemon_kills": chaos["daemon_kills"],
        "tails_torn": chaos["tails_torn"],
        "recovery_ready_s": [round(v, 3) for v in ready],
        "recovery_drain_s": [round(v, 3) for v in drain],
        "recovery_ready_max_s": round(max(ready), 3),
        "recovery_ready_p99_s": round(
            sorted(ready)[min(len(ready) - 1, int(0.99 * len(ready)))], 3),
        "exactly_once": True,
        "journal_tail_dropped": chaos["audit"]["dropped_tail"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_service.json").write_text(
        json.dumps(doc, indent=2) + "\n")
    save_result(
        "service_resilience",
        "simulation service under the deterministic chaos harness "
        "(seed 0, scale %s)\n"
        "healthy throughput : %.2f req/s (%d requests, %d workers, "
        "%.2fs cold start)\n"
        "chaos plan         : %d requests, %d injected fault(s), "
        "1 daemon SIGKILL, torn tail\n"
        "outcomes           : %s (exactly-once audit passed)\n"
        "recovery readiness : %s s\n"
        "recovery drain     : %s s"
        % (scale.name, throughput, healthy_plan.requests,
           healthy_plan.workers, startup,
           chaos_plan.requests, injected, chaos["outcomes"],
           ", ".join(f"{v:.2f}" for v in ready),
           ", ".join(f"{v:.2f}" for v in drain)),
    )
