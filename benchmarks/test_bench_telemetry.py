"""Tracing overhead: instrumented run vs the NullTracer default.

The telemetry design target is <5% wall-clock overhead when a real
:class:`~repro.telemetry.Tracer` is installed, and *zero* overhead by
default (instrumented code calls the shared inert ``NULL_TRACER``).
This bench measures both sides on the same small simulation and writes
the ratio to ``results/trace_overhead.txt``.
"""

from __future__ import annotations

import time

from repro.methods import make_selector
from repro.policies import FCFS
from repro.simulator.cluster import Cluster
from repro.simulator.engine import SchedulingEngine
from repro.simulator.job import Job
from repro.telemetry import Tracer, use_tracer
from repro.windows import WindowPolicy

from conftest import run_once


def _jobs(n=60):
    return [Job(jid=i, submit_time=float(i * 10), runtime=300.0,
                walltime=300.0, nodes=1 + i % 8, bb=float(i % 5) * 10.0)
            for i in range(n)]


def _simulate(traced: bool, fine: bool = False):
    engine = SchedulingEngine(
        Cluster(nodes=16, bb_capacity=200.0),
        FCFS(),
        make_selector("BBSched", seed=3, generations=20),
        WindowPolicy(size=8),
    )
    if traced:
        with use_tracer(Tracer(fine=fine)):
            return engine.run(_jobs())
    return engine.run(_jobs())


def test_bench_sim_untraced(benchmark):
    result = run_once(benchmark, _simulate, False)
    assert result.makespan > 0


def test_bench_sim_traced(benchmark):
    result = run_once(benchmark, _simulate, True)
    assert result.makespan > 0


def test_trace_overhead_ratio(save_result):
    """Paired timing of the same simulation with and without a tracer.

    Alternates the two variants to cancel thermal drift and takes the
    median of each (min-of-N is too noisy on shared boxes — one quiet
    untraced iteration skews the ratio).  The assert is deliberately
    lenient (25%) so a noisy CI box doesn't flake; the recorded number
    is what we track against the 5% design target.
    """
    repeats = 5
    untraced, traced = [], []
    _simulate(True)  # warm both paths
    for _ in range(repeats):
        t0 = time.perf_counter()
        _simulate(False)
        untraced.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        _simulate(True)
        traced.append(time.perf_counter() - t0)
    base = sorted(untraced)[repeats // 2]
    instrumented = sorted(traced)[repeats // 2]
    overhead = instrumented / base - 1.0
    save_result(
        "trace_overhead",
        "tracing overhead (median of %d paired runs)\n"
        "untraced : %.4fs\n"
        "traced   : %.4fs\n"
        "overhead : %+.2f%% (design target < 5%%)"
        % (repeats, base, instrumented, overhead * 100.0),
    )
    assert overhead < 0.25
