"""§4.4 scheduling overheads: per-decision wall time of every method."""

from conftest import run_once

from repro.experiments import overheads


def test_bench_overheads(benchmark, scale, save_result):
    result = run_once(benchmark, overheads.run, scale,
                      window=50, snapshots=2,
                      generation_sweep=(100, 500, 2000))
    save_result("overheads", overheads.render(result))

    t = result.per_method
    # The greedy methods are the cheapest optimizers (paper: Bin_Packing
    # ~0.1 s at w=50, only the no-op baseline is cheaper).
    assert t["Baseline"] <= min(v for k, v in t.items() if k != "Baseline")
    ga_methods = [v for k, v in t.items()
                  if k not in ("Baseline", "Bin_Packing")]
    assert t["Bin_Packing"] <= min(ga_methods)
    # Every method satisfies the 15-30 s scheduler budget, including
    # BBSched at G=2000, w=50 (paper: < 2 s there).
    assert max(t.values()) < result.time_limit
    assert result.bbsched_by_generations[2000] < result.time_limit
    # Cost grows with the generation budget.
    assert result.bbsched_by_generations[2000] > \
        result.bbsched_by_generations[100]
