"""Figure 14 / §5: the four-objective local-SSD case study."""

from conftest import run_once

from repro.experiments import fig14


def test_bench_fig14(benchmark, scale, save_result):
    result = run_once(benchmark, fig14.run, scale)
    save_result("fig14", fig14.render(result))

    for wl in result.workloads:
        runs = result.runs[wl]
        # The SSD axes are live: every method uses local SSD and wastes
        # some (heterogeneous tiers force over-provisioning).
        for m in result.methods:
            assert runs[m].metric("ssd_usage") > 0.0
            assert runs[m].metric("ssd_waste") >= 0.0
    # §5's headline: BBSched achieves the best (or tied-best) overall
    # Kiviat area on most workloads.
    wins = sum(
        1 for wl in result.workloads
        if result.areas[wl]["BBSched"]
        >= 0.95 * max(result.areas[wl].values())
    )
    assert wins >= len(result.workloads) // 2
