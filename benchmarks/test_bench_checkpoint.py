"""Checkpointing overhead: periodic snapshots vs an uncheckpointed run.

The durability design target is <3% wall-clock overhead at the default
periodic-save cadence, and *zero* overhead when no ``CheckpointConfig``
is passed (the engine's batch hook is a single ``None`` check).  This
bench measures both sides of the same simulation, times one save and one
restore in isolation, and writes ``results/BENCH_checkpoint.json``.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.checkpoint import CheckpointConfig, load_checkpoint, save_checkpoint
from repro.errors import SimulationInterrupted
from repro.experiments import get_workload, run_one

from conftest import RESULTS_DIR, run_once


def _run(scale, checkpoint=None):
    trace = get_workload("Theta-S4", scale)
    return run_one(trace, "BBSched", scale, seed=0, checkpoint=checkpoint)


def _config(tmp_path, every_hours):
    return CheckpointConfig(path=str(tmp_path / "bench.ckpt"),
                            every_hours=every_hours)


def test_bench_run_uncheckpointed(benchmark, scale):
    result = run_once(benchmark, _run, scale)
    assert result.makespan > 0


def test_bench_run_checkpointed(benchmark, scale, tmp_path):
    result = run_once(benchmark, _run, scale, _config(tmp_path, 6.0))
    assert result.makespan > 0


def test_checkpoint_overhead_budget(scale, tmp_path, save_result):
    """Periodic checkpointing must cost <3% of an uncheckpointed run.

    Two measurements, because end-to-end pairing is noisy on shared
    boxes (run-to-run swings exceed the budget):

    * **accounted** — the engine's own ``checkpoint.save_seconds``
      histogram (every save's pickle+fsync, timed in-process) over the
      median uncheckpointed wall-clock.  Deterministic; this is what the
      3% target is asserted against.
    * **end-to-end** — median of alternated paired runs, recorded for
      the JSON trail with a deliberately lenient assert (25%) so a noisy
      CI box doesn't flake.
    """
    repeats = 5
    plain, checkpointed, hook_only = [], [], []
    reference = _run(scale, _config(tmp_path, 6.0))  # warm both paths
    for _ in range(repeats):
        t0 = time.perf_counter()
        _run(scale)
        plain.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        _run(scale, _config(tmp_path, 6.0))
        checkpointed.append(time.perf_counter() - t0)
        # Hook-only run: every_hours=0 keeps the per-batch after_batch()
        # call but never saves, separating the standing hook cost from
        # the saves themselves in the breakdown below.
        t0 = time.perf_counter()
        _run(scale, _config(tmp_path, 0.0))
        hook_only.append(time.perf_counter() - t0)

    # The accounted cost: what the saves themselves took, from the run's
    # own metrics (collected outside the timing loop).
    trace = get_workload("Theta-S4", scale)
    metered = run_one(trace, "BBSched", scale, seed=0,
                      checkpoint=_config(tmp_path, 6.0),
                      collect_telemetry=True)
    hists = metered.telemetry.metrics.histograms
    save_hist = hists["checkpoint.save_seconds"]
    phase_totals = {
        phase: round(hists[f"checkpoint.{phase}_seconds"].total, 6)
        for phase in ("pickle", "digest", "io")
    }

    # One save and one restore, timed in isolation on a mid-run engine.
    cut = tmp_path / "cut.ckpt"
    try:
        _run(scale, CheckpointConfig(path=str(cut), every_hours=1e9,
                                     stop_after=0.5 * reference.makespan))
    except SimulationInterrupted:
        pass
    t0 = time.perf_counter()
    engine, header = load_checkpoint(str(cut))
    load_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    save_checkpoint(str(tmp_path / "resave.ckpt"), engine,
                    meta=header["manifest"]["meta"])
    save_s = time.perf_counter() - t0

    base = sorted(plain)[repeats // 2]
    durable = sorted(checkpointed)[repeats // 2]
    hook = sorted(hook_only)[repeats // 2]
    end_to_end = durable / base - 1.0
    hook_overhead = hook / base - 1.0
    accounted = save_hist.total / base
    doc = {
        "scale": scale.name,
        "workload": "Theta-S4",
        "method": "BBSched",
        "repeats": repeats,
        "uncheckpointed_s": round(base, 6),
        "checkpointed_s": round(durable, 6),
        "hook_only_s": round(hook, 6),
        "saves": save_hist.count,
        "save_seconds_total": round(save_hist.total, 6),
        "save_phase_totals_s": phase_totals,
        "accounted_overhead_fraction": round(accounted, 6),
        "hook_overhead_fraction": round(hook_overhead, 6),
        "end_to_end_overhead_fraction": round(end_to_end, 6),
        "unattributed_overhead_fraction": round(
            end_to_end - accounted - hook_overhead, 6),
        "design_target_fraction": 0.03,
        "save_s": round(save_s, 6),
        "load_s": round(load_s, 6),
        "checkpoint_bytes": header["payload_bytes"],
    }
    pathlib.Path(RESULTS_DIR).mkdir(exist_ok=True)
    (pathlib.Path(RESULTS_DIR) / "BENCH_checkpoint.json").write_text(
        json.dumps(doc, indent=2) + "\n")
    save_result(
        "checkpoint_overhead",
        "checkpointing overhead (every 6 sim-hours, median of %d paired runs)\n"
        "uncheckpointed : %.4fs\n"
        "checkpointed   : %.4fs\n"
        "accounted      : %+.2f%% over %d saves (design target < 3%%)\n"
        "  pickle/digest/io : %.4fs / %.4fs / %.4fs\n"
        "hook only      : %+.2f%% (after_batch with saves disabled)\n"
        "end-to-end     : %+.2f%% (noisy on shared boxes)\n"
        "one restore    : %.4fs\n"
        "one save       : %.4fs (%d mid-run payload bytes)"
        % (repeats, base, durable, accounted * 100.0, save_hist.count,
           phase_totals["pickle"], phase_totals["digest"], phase_totals["io"],
           hook_overhead * 100.0, end_to_end * 100.0, load_s, save_s,
           header["payload_bytes"]),
    )
    assert accounted < 0.03
    assert end_to_end < 0.25
