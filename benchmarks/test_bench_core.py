"""Engine hot-path speedup: array-backed fast path vs the reference engine.

The fast engine (:class:`repro.simulator.engine.SchedulingEngine` with
``fast=True``, the default) vectorizes queue ordering through the
:class:`~repro.simulator.jobtable.JobTable`, caches the FCFS ordering
across passes, maintains planned releases incrementally, and batch-pops
simultaneous events.  ``tests/test_differential.py`` proves all of it is
byte-identical to the reference path (``fast=False``, CLI
``--no-fast-engine``), so the only question left is wall-clock.

The design target is **>=1.5x** end-to-end on an *engine-dominated*
configuration: the Baseline (FCFS + EASY) scheduler on Cori-S1, where no
GA runs and queue ordering / backfill planning are the whole cost.  The
fast path's wins grow with backlog depth, so the measured configuration
is pinned to the paper-scale trace shape (4000 jobs on a half-size Cori)
whenever the session scale is not smoke; at smoke scale the backlog is
too shallow to amortize anything, so only fast-path *engagement* is
asserted and the (near-1x) timing is recorded for the trail.

Also recorded: the fast engine's incremental gain on BBSched *on top of*
the GA evaluation cache (both sides run ``eval_cache=True``), at the
session scale.  That number is expected to be modest — the GA dominates
those runs — and is not asserted.

Writes ``results/BENCH_core.json``.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.experiments import get_scale, get_workload, run_one

from conftest import RESULTS_DIR, run_once

#: The end-to-end speedup the fast path was designed to deliver on the
#: engine-dominated configuration (measured ~2x at the paper trace shape).
DESIGN_TARGET = 1.5

#: What the test asserts at default scale and up: deliberately looser than
#: the design target so a noisy shared box doesn't flake (end-to-end
#: pairing swings ~10-20%).
ASSERT_FLOOR = 1.3


def _engine_scale(scale):
    """The engine-dominated measurement scale.

    Queue-ordering and backfill costs scale with backlog depth, which the
    trace shape controls (``n_jobs``, ``cori_factor``).  Smoke stays smoke
    — CI only checks engagement there — while any real scale measures the
    paper trace shape, the regime the fast path was built for.
    """
    return scale if scale.name == "smoke" else get_scale("paper")


def _run(scale, fast_engine):
    trace = get_workload("Cori-S1", scale)
    return run_one(trace, "Baseline", scale, seed=0, fast_engine=fast_engine)


def _run_bbsched(scale, fast_engine):
    trace = get_workload("Theta-S4", scale)
    return run_one(trace, "BBSched", scale, seed=0, fast_engine=fast_engine)


def test_bench_simulate_fast_engine(benchmark, scale):
    result = run_once(benchmark, _run, _engine_scale(scale), True)
    assert result.makespan > 0


def test_bench_simulate_reference_engine(benchmark, scale):
    result = run_once(benchmark, _run, _engine_scale(scale), False)
    assert result.makespan > 0


def test_fast_engine_speedup(scale, save_result):
    """The fast path must beat the reference engine end-to-end.

    Median of alternated paired runs (both paths warmed first), so a load
    spike hits the two sides evenly instead of biasing one.  The 1.5x
    design target is recorded in the JSON; the assert uses the lenient
    floor above, and only at non-smoke scale.  Fast-path engagement
    (vectorized orderings, FCFS order-cache hits) comes from the run's
    own ``engine.order.*`` counters, collected outside the timing loop.
    """
    core = _engine_scale(scale)
    repeats = 5
    fast_times, ref_times = [], []
    _run(core, True)  # warm both paths (trace construction is cached too)
    _run(core, False)
    for _ in range(repeats):
        t0 = time.perf_counter()
        _run(core, True)
        fast_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        _run(core, False)
        ref_times.append(time.perf_counter() - t0)

    # Engagement counters from the engine's metrics registry.
    trace = get_workload("Cori-S1", core)
    metered = run_one(trace, "Baseline", core, seed=0, fast_engine=True,
                      collect_telemetry=True)
    counters = metered.telemetry.metrics.counters
    order = {
        key: counters[f"engine.order.{key}"].value
        for key in ("vectorized", "cache_hits", "fallback")
        if f"engine.order.{key}" in counters
    }

    # Incremental gain on a GA-dominated run, on top of the eval cache.
    bb_repeats = 3
    bb_fast, bb_ref = [], []
    _run_bbsched(scale, True)
    _run_bbsched(scale, False)
    for _ in range(bb_repeats):
        t0 = time.perf_counter()
        _run_bbsched(scale, True)
        bb_fast.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        _run_bbsched(scale, False)
        bb_ref.append(time.perf_counter() - t0)

    fast = sorted(fast_times)[repeats // 2]
    ref = sorted(ref_times)[repeats // 2]
    speedup = ref / fast
    bbs_fast = sorted(bb_fast)[bb_repeats // 2]
    bbs_ref = sorted(bb_ref)[bb_repeats // 2]
    bbs_speedup = bbs_ref / bbs_fast
    doc = {
        "scale": scale.name,
        "engine_scale": core.name,
        "workload": "Cori-S1",
        "method": "Baseline",
        "repeats": repeats,
        "fast_s": round(fast, 6),
        "reference_s": round(ref, 6),
        "speedup": round(speedup, 4),
        "design_target_speedup": DESIGN_TARGET,
        "asserted_floor_speedup": ASSERT_FLOOR,
        "order_counters": order,
        "bbsched": {
            "scale": scale.name,
            "workload": "Theta-S4",
            "repeats": bb_repeats,
            "fast_s": round(bbs_fast, 6),
            "reference_s": round(bbs_ref, 6),
            "speedup": round(bbs_speedup, 4),
        },
    }
    pathlib.Path(RESULTS_DIR).mkdir(exist_ok=True)
    (pathlib.Path(RESULTS_DIR) / "BENCH_core.json").write_text(
        json.dumps(doc, indent=2) + "\n")
    save_result(
        "fast_engine_speedup",
        "Array-backed engine fast path (median of %d paired runs, %s shape)\n"
        "fast engine : %.4fs\n"
        "reference   : %.4fs\n"
        "speedup     : %.2fx (design target >= %.1fx, asserted >= %.1fx)\n"
        "ordering    : %d vectorized / %d cache hits / %d fallback\n"
        "BBSched incremental (on top of eval cache, %s scale): %.2fx"
        % (repeats, core.name, fast, ref, speedup, DESIGN_TARGET,
           ASSERT_FLOOR, order.get("vectorized", 0),
           order.get("cache_hits", 0), order.get("fallback", 0),
           scale.name, bbs_speedup),
    )
    # The fast path must really engage — a silent reference fallback would
    # "pass" at 1.0x.  Baseline/Cori is FCFS: vectorized ordering computes
    # fresh orders, the membership-revision cache serves repeat passes, and
    # the per-job fallback must never trigger.
    assert order.get("vectorized", 0) > 0
    assert order.get("cache_hits", 0) > 0
    assert order.get("fallback", 0) == 0
    if scale.name != "smoke":
        assert speedup >= ASSERT_FLOOR
