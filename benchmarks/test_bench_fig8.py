"""Figure 8: average job wait time across the grid."""

import numpy as np
from conftest import run_once

from repro.experiments import fig8


def test_bench_fig8(benchmark, scale, save_result):
    result = run_once(benchmark, fig8.run, scale)
    save_result("fig8", fig8.render(result))

    # Waits surge with burst-buffer pressure under the baseline (paper:
    # Cori-Original <6h vs Cori-S4 ~19h).
    for machine in ("Cori", "Theta"):
        base = {w: result.avg_wait[w]["Baseline"] for w in result.workloads
                if w.startswith(machine)}
        assert base[f"{machine}-S4"] > base[f"{machine}-Original"]
    # On the heavy-BB Cori workloads the optimizing methods cut waits
    # relative to the baseline (the paper's headline direction).
    best = max(result.reduction_vs_baseline("Cori-S4", m)
               for m in result.methods if m != "Baseline")
    assert best > 0.0
    # BBSched's best reduction across the grid is material.
    _, red = result.best_reduction("BBSched")
    assert red > 0.02
