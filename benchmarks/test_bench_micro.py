"""Micro-benchmarks of the hot computational kernels.

These time the primitives that dominate a production deployment's
per-decision latency (§3.3's O(G×P) claim) — useful for tracking
performance regressions, unlike the one-shot figure benches.
"""

import numpy as np
import pytest

from repro.core import (
    ExhaustiveSolver,
    MOGASolver,
    ScalarGASolver,
    SelectionProblem,
    SSDSelectionProblem,
    non_dominated_mask,
    pareto_front_2d,
)
from repro.simulator.job import Job


def _window(w, seed=0):
    rng = np.random.default_rng(seed)
    return [
        Job(jid=i, submit_time=0.0, runtime=3600.0, walltime=3600.0,
            nodes=int(rng.integers(1, 500)), bb=float(rng.integers(0, 200) * 100))
        for i in range(w)
    ]


@pytest.fixture(scope="module")
def problem20():
    return SelectionProblem.from_window(_window(20), 2000, 500_000.0)


def test_bench_ga_solve_paper_params(benchmark, problem20):
    """One full G=500, P=20 MOO solve — the §3.2.3 'minimal overhead'."""
    solver = MOGASolver(generations=500, population=20, seed=1)
    result = benchmark(solver.solve, problem20)
    assert len(result) >= 1


def test_bench_ga_solve_default_params(benchmark, problem20):
    solver = MOGASolver(generations=60, population=20, seed=1)
    result = benchmark(solver.solve, problem20)
    assert len(result) >= 1


def test_bench_scalar_ga(benchmark, problem20):
    solver = ScalarGASolver([1.0, 0.0], generations=60, population=20, seed=1)
    result = benchmark(solver.best, problem20)
    assert result.genes.shape == (20,)


def test_bench_exhaustive_w16(benchmark):
    problem = SelectionProblem.from_window(_window(16), 2000, 500_000.0)
    solver = ExhaustiveSolver()
    result = benchmark(solver.solve, problem)
    assert len(result) >= 1


def test_bench_ssd_problem_evaluate(benchmark):
    rng = np.random.default_rng(3)
    jobs = [
        Job(jid=i, submit_time=0.0, runtime=3600.0, walltime=3600.0,
            nodes=int(rng.integers(1, 50)), bb=float(rng.integers(0, 100)),
            ssd=float(rng.choice([0.0, 64.0, 200.0])))
        for i in range(20)
    ]
    problem = SSDSelectionProblem(jobs, 1000, 100_000.0,
                                  {128.0: 500, 256.0: 500})
    pop = problem.random_population(40, seed=0)
    F = benchmark(problem.evaluate, pop)
    assert F.shape == (40, 4)


def test_bench_pareto_front_2d(benchmark):
    rng = np.random.default_rng(4)
    F = rng.random((100_000, 2))
    idx = benchmark(pareto_front_2d, F)
    assert idx.size >= 1


def test_bench_non_dominated_mask_3d(benchmark):
    rng = np.random.default_rng(5)
    F = rng.random((2000, 3))
    mask = benchmark(non_dominated_mask, F)
    assert mask.any()
