"""Window-solver benchmark: solve-time distributions and the GA-vs-MILP gap.

Two questions, answered in ``results/BENCH_solvers.json``:

1. **Solve time** — per-solver wall-clock distributions over real trace
   windows (chunks of the Cori-S1 workload against 60%-free capacity),
   at three widths: a small window every solver can take (w=10, including
   exhaustive enumeration), the session scale's window, and w=30 — past
   the exhaustive solver's 2^w wall, where only the MILP solver still
   gives exact answers.  The w=30 ε-constraint front sweep is measured
   only when scipy is present (the pure-Python branch-and-bound solves
   the scalar programs fine but the full sweep is a scipy-speed job).

2. **Optimality gap** — how far the paper's GA lands from the exact
   optimum, measured by running BBSched end-to-end on Cori-S1 and
   Theta-S4 with the :class:`~repro.solvers.gap.OptimalityYardstick`
   riding along (``run_one(..., yardstick=True)``), which re-solves every
   selection pass exactly and histograms the relative gap.

Scale: ``REPRO_SCALE`` (smoke/default/paper), like every benchmark here.
"""

from __future__ import annotations

import importlib.util
import json
import time

import numpy as np

from repro.core.problem import SelectionProblem
from repro.experiments import get_scale, get_workload, run_one
from repro.solvers import (
    ExhaustiveWindowSolver,
    GAWindowSolver,
    MILPWindowSolver,
    ScalarGAWindowSolver,
)

from conftest import RESULTS_DIR, run_once

def _scipy_available():
    try:
        return importlib.util.find_spec("scipy") is not None
    except Exception:  # a broken/blocked scipy install counts as absent
        return False


HAS_SCIPY = _scipy_available()

#: Fraction of machine capacity presented as free to each window problem
#: (a busy-but-not-full machine, the interesting selection regime).
CAP_FRAC = 0.6

#: Trace windows measured per (width, solver) cell.
N_WINDOWS = 8

#: Unit-cost scalarization used for all scalar solves.
COEFFS = (1.0, 1.0)


def _problems(scale, w, n=N_WINDOWS):
    """Window problems cut from consecutive Cori-S1 trace job chunks."""
    trace = get_workload("Cori-S1", scale)
    jobs = trace.fresh_jobs()
    machine = trace.machine
    out = []
    for i in range(n):
        chunk = jobs[i * w:(i + 1) * w]
        if len(chunk) < w:
            break
        out.append(SelectionProblem.from_window(
            chunk, CAP_FRAC * machine.nodes, CAP_FRAC * machine.schedulable_bb
        ))
    return out


def _dist(samples):
    arr = np.asarray(samples, dtype=float)
    return {
        "n": int(arr.size),
        "mean_s": float(arr.mean()),
        "min_s": float(arr.min()),
        "max_s": float(arr.max()),
        "p95_s": float(np.percentile(arr, 95.0)),
    }


def _time_solver(solver, problems, mode):
    samples = []
    for k, problem in enumerate(problems):
        t0 = time.perf_counter()
        if mode == "front":
            solver.solve(problem, seed=k)
        else:
            solver.solve_scalar(problem, COEFFS, seed=k)
        samples.append(time.perf_counter() - t0)
    return _dist(samples)


def _ga_solvers(scale):
    knobs = dict(generations=scale.generations, population=scale.population,
                 mutation=scale.mutation)
    return GAWindowSolver(**knobs), ScalarGAWindowSolver(**knobs)


def _solve_times(scale):
    ga, scalar = _ga_solvers(scale)
    milp = MILPWindowSolver()
    exhaustive = ExhaustiveWindowSolver()
    section = {}

    small = _problems(scale, 10)
    section["w10"] = {
        "ga_front": _time_solver(ga, small, "front"),
        "scalar": _time_solver(scalar, small, "scalar"),
        "milp_front": _time_solver(milp, small, "front"),
        "milp_scalar": _time_solver(milp, small, "scalar"),
        "exhaustive_front": _time_solver(exhaustive, small, "front"),
    }

    if scale.window != 10:
        mid = _problems(scale, scale.window)
        section[f"w{scale.window}"] = {
            "ga_front": _time_solver(ga, mid, "front"),
            "scalar": _time_solver(scalar, mid, "scalar"),
            "milp_front": _time_solver(milp, mid, "front"),
            "milp_scalar": _time_solver(milp, mid, "scalar"),
        }

    # Past the exhaustive wall: w=30 > MAX_EXHAUSTIVE_W.  Scalar programs
    # are fine on either backend; the front sweep is gated on scipy.
    wide = _problems(scale, 30, n=4)
    w30 = {"milp_scalar": _time_solver(milp, wide, "scalar")}
    if HAS_SCIPY:
        w30["milp_front"] = _time_solver(milp, wide, "front")
    else:
        w30["milp_front"] = None  # needs the scipy backend for sweep speed
    section["w30"] = w30
    section["milp_stats"] = dict(milp.stats)
    return section


def _gap_run(workload, scale):
    trace = get_workload(workload, scale)
    result = run_one(trace, "BBSched", scale, seed=0, yardstick=True)
    assert result.optimality_gap is not None, "yardstick recorded no gaps"
    return result


def test_bench_solver_times_and_gap(benchmark, scale, save_result):
    solve_times = _solve_times(scale)

    gaps = {}
    gap_cori = run_once(benchmark, _gap_run, "Cori-S1", scale)
    gaps["Cori-S1"] = gap_cori.optimality_gap
    gaps["Theta-S4"] = _gap_run("Theta-S4", scale).optimality_gap

    doc = {
        "scale": scale.name,
        "scipy": HAS_SCIPY,
        "cap_frac": CAP_FRAC,
        "coeffs": list(COEFFS),
        "solve_times": solve_times,
        "optimality_gap": gaps,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_solvers.json").write_text(json.dumps(doc, indent=2) + "\n")

    lines = [f"Window-solver benchmark (scale={scale.name}, scipy={HAS_SCIPY})", ""]
    for width, cells in solve_times.items():
        if width == "milp_stats":
            continue
        lines.append(f"  {width}:")
        for name, dist in cells.items():
            if dist is None:
                lines.append(f"    {name:<18} skipped (needs scipy)")
            else:
                lines.append(
                    f"    {name:<18} mean {dist['mean_s'] * 1e3:9.2f} ms   "
                    f"max {dist['max_s'] * 1e3:9.2f} ms   (n={dist['n']})"
                )
    lines.append("")
    for workload, g in gaps.items():
        lines.append(
            f"  {workload}: GA-vs-MILP gap mean {100 * g['mean']:.4f}%  "
            f"p95 {100 * g['p95']:.4f}%  max {100 * g['max']:.4f}%  "
            f"over {g['count']:.0f} passes ({g['skipped']:.0f} skipped)"
        )
    save_result("BENCH_solvers", "\n".join(lines))

    # Sanity floor, not a perf assertion: exact answers must have arrived.
    assert solve_times["milp_stats"]["solves"] >= 0
    for g in gaps.values():
        assert g["count"] > 0 and g["mean"] >= 0.0
