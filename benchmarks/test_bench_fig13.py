"""Figure 13: Kiviat holistic comparison across all workloads."""

import numpy as np
from conftest import run_once

from repro.experiments import fig13


def test_bench_fig13(benchmark, scale, save_result):
    result = run_once(benchmark, fig13.run, scale)
    save_result("fig13", fig13.render(result))

    # Every axis is normalised to [0, 1] with at least one method at each
    # extreme per workload.
    for w in result.workloads:
        for axis in next(iter(result.axes[w].values())):
            vals = [result.axes[w][m][axis] for m in result.methods]
            assert max(vals) == 1.0
            assert min(vals) == 0.0
    # BBSched's overall area beats the naive baseline's on the heavy-BB
    # workloads (the paper's headline holistic claim).
    heavy = [w for w in result.workloads if w.endswith(("S3", "S4"))]
    bb_wins = sum(
        1 for w in heavy
        if result.areas[w]["BBSched"] >= result.areas[w]["Baseline"]
    )
    assert bb_wins >= len(heavy) // 2
