"""Figures 9-11: wait-time breakdowns on Theta-S4."""

import numpy as np
from conftest import run_once

from repro.experiments import fig9_11


def _weighted_any(d):
    vals = [v for v in d.values() if v > 0]
    return np.mean(vals) if vals else 0.0


def test_bench_fig9_11(benchmark, scale, save_result):
    result = run_once(benchmark, fig9_11.run, scale)
    save_result("fig9_11", fig9_11.render(result))

    base_bb = result.by_bb["Baseline"]
    # Figure 10's premise: jobs with burst-buffer requests wait longer
    # than BB-free jobs under the baseline.
    bb_bins = [v for k, v in base_bb.items() if k != "0TB" and v > 0]
    if bb_bins and base_bb["0TB"] > 0:
        assert max(bb_bins) > base_bb["0TB"]
    # Figure 11's premise: long jobs wait more than short jobs.
    base_rt = result.by_runtime["Baseline"]
    shortw = base_rt.get("0-0.5h", 0.0)
    longw = base_rt.get(">12h", 0.0) or base_rt.get("6-12h", 0.0)
    if longw > 0:
        assert longw >= shortw * 0.5  # long jobs are not privileged
    # All three breakdowns cover every method.
    for table in (result.by_size, result.by_bb, result.by_runtime):
        assert set(table) == set(result.methods)
