"""Figure 2: exhaustive solve time grows exponentially with window size."""

import numpy as np
from conftest import run_once

from repro.experiments import fig2


def test_bench_fig2(benchmark, scale, save_result):
    result = run_once(benchmark, fig2.run, scale,
                      sizes=(4, 8, 12, 16, 18, 20), repeats=2)
    save_result("fig2", fig2.render(result))

    sizes = sorted(result.times)
    times = [result.times[w] for w in sizes]
    # Monotone growth over the sweep endpoints...
    assert times[-1] > times[0]
    # ...and super-linear: the per-gene growth factor over the top of the
    # sweep must exceed 1.5x per +4 genes (true exponent is ~2x/gene).
    top_ratio = result.times[20] / result.times[16]
    assert top_ratio > 1.5
    # Extrapolating the doubling law crosses the 15 s budget well before
    # the w=50 windows the overhead study uses.
    per_gene = (result.times[20] / result.times[12]) ** (1 / 8)
    w_limit = 20 + np.log(result.time_limit / result.times[20]) / np.log(per_gene)
    assert w_limit < 50
