"""Figure 4: GD and time-to-solution versus the GA's G and P parameters."""

from conftest import run_once

from repro.experiments import fig4


def test_bench_fig4(benchmark, scale, save_result):
    result = run_once(
        benchmark, fig4.run, scale,
        generations=(0, 50, 200, 500), populations=(10, 20),
        window=14, n_windows=2,
    )
    save_result("fig4", fig4.render(result))

    # GD falls as G grows (paper: steep to G≈500, then flattens)...
    for P in (10, 20):
        assert result.cell(500, P).gd <= result.cell(0, P).gd
    # ...and time rises with G.
    assert result.cell(500, 20).seconds > result.cell(50, 20).seconds
    # Larger populations cost more time at fixed G.
    assert result.cell(500, 20).seconds > result.cell(500, 10).seconds
    # The paper's operating point stays well under the 15 s budget
    # ("minimal overhead, less than 0.2 second" on their hardware).
    assert result.cell(500, 20).seconds < 15.0
