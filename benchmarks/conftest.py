"""Shared fixtures for the figure/table regeneration benchmarks.

Each benchmark runs its experiment exactly once (``pedantic`` with one
round — these are minutes-long simulations, not microseconds), renders the
paper artefact as ASCII, and saves it under ``results/`` so EXPERIMENTS.md
can cite the regenerated numbers.

Scale selection: ``REPRO_SCALE`` env var (smoke/default/paper), default
``default``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import get_scale

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def scale():
    """The experiment scale every benchmark runs at."""
    return get_scale()


@pytest.fixture(scope="session")
def save_result():
    """Callable persisting a rendered experiment under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
