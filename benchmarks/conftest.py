"""Shared fixtures for the figure/table regeneration benchmarks.

Each benchmark runs its experiment exactly once (``pedantic`` with one
round — these are minutes-long simulations, not microseconds), renders the
paper artefact as ASCII, and saves it under ``results/`` so EXPERIMENTS.md
can cite the regenerated numbers.

Scale selection: ``REPRO_SCALE`` env var (smoke/default/paper), default
``default``.
"""

from __future__ import annotations

import json
import pathlib
import platform

import pytest

from repro.experiments import get_scale

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def scale():
    """The experiment scale every benchmark runs at."""
    return get_scale()


@pytest.fixture(scope="session")
def save_result():
    """Callable persisting a rendered experiment under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def pytest_sessionfinish(session, exitstatus):
    """Write machine-readable wall-clock telemetry for every benchmark.

    ``results/BENCH_telemetry.json`` maps each benchmark name to its
    mean/min/max/rounds, so perf regressions diff as JSON instead of
    being read out of pytest-benchmark's console table.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    entries = {}
    for bench in bench_session.benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        entries[bench.name] = {
            "group": bench.group,
            "mean_s": stats.mean,
            "min_s": stats.min,
            "max_s": stats.max,
            "rounds": getattr(stats, "rounds", len(stats.data)),
        }
    if not entries:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    doc = {
        "scale": get_scale().name,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": dict(sorted(entries.items())),
    }
    out = RESULTS_DIR / "BENCH_telemetry.json"
    out.write_text(json.dumps(doc, indent=2) + "\n")
