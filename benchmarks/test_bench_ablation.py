"""Ablations of BBSched's design choices (DESIGN.md §Key design decisions)."""

from conftest import run_once

from repro.experiments import ablation
from repro.experiments.report import format_table


def test_bench_ablation_ga_selection(benchmark, scale, save_result):
    """Paper's age-based Pareto selection vs NSGA-II crowding (GD)."""
    result = run_once(benchmark, ablation.ablate_ga_selection, scale)
    rows = [[s, f"{result.gd[s]:.5f}", f"{result.seconds[s] * 1e3:.1f}ms"]
            for s in result.gd]
    save_result("ablation_ga_selection",
                format_table(rows, ["scheme", "GD", "time/solve"],
                             title="GA selection-scheme ablation"))
    # Both schemes produce usable fronts; neither GD is pathological.
    assert all(gd < 0.5 for gd in result.gd.values())


def test_bench_ablation_trade_factor(benchmark, scale, save_result):
    """Sweeping the §3.2.4 trade factor shifts the node/BB balance."""
    result = run_once(benchmark, ablation.ablate_trade_factor, scale,
                      factors=(0.5, 2.0, 8.0))
    rows = [[f, f"{n:.3f}", f"{b:.3f}"]
            for f, (n, b) in sorted(result.usages.items())]
    save_result("ablation_trade_factor",
                format_table(rows, ["factor", "node usage", "bb usage"],
                             title="Decision-rule trade-factor ablation"))
    assert set(result.usages) == {0.5, 2.0, 8.0}
    for node, bb in result.usages.values():
        assert 0.0 < node <= 1.0
        assert 0.0 < bb <= 1.0


def test_bench_ablation_starvation_bound(benchmark, scale, save_result):
    """Tightening the §3.1 starvation bound trades utilization for fairness."""
    result = run_once(benchmark, ablation.ablate_starvation_bound, scale,
                      bounds=(5, 50, 500))
    rows = [[b, f"{n:.3f}", f"{w / 3600:.2f}h"]
            for b, (n, w) in sorted(result.outcomes.items())]
    save_result("ablation_starvation_bound",
                format_table(rows, ["bound", "node usage", "max wait"],
                             title="Starvation-bound ablation"))
    # Sanity: every configuration completes with plausible outcomes.  (No
    # monotonicity assertion — a tight bound can either cap the longest
    # wait or *raise* it by thrashing the optimizer with forced jobs.)
    for node, max_wait in result.outcomes.values():
        assert 0.0 < node <= 1.0
        assert max_wait >= 0.0
