"""Figure 5: burst-buffer request histograms for all ten workloads."""

import numpy as np
from conftest import run_once

from repro.experiments import fig5
from repro.experiments.workloads import ALL_WORKLOADS


def test_bench_fig5(benchmark, scale, save_result):
    result = run_once(benchmark, fig5.run, scale)
    save_result("fig5", fig5.render(result))

    h = result.histograms
    assert set(h) == set(ALL_WORKLOADS)
    for machine in ("Cori", "Theta"):
        orig = h[f"{machine}-Original"]
        s1, s2 = h[f"{machine}-S1"], h[f"{machine}-S2"]
        s3, s4 = h[f"{machine}-S3"], h[f"{machine}-S4"]
        # S1/S3 put requests on 50% of jobs, S2/S4 on 75%.
        assert s2.n_requests > s1.n_requests
        assert s4.n_requests > s3.n_requests
        # The original trace barely registers next to the S-workloads.
        assert orig.total_volume_tb < s1.total_volume_tb
        # S3/S4 sit at larger requests than S1/S2 (higher mean request).
        assert (s3.total_volume_tb / s3.n_requests
                > s1.total_volume_tb / s1.n_requests)
        assert (s4.total_volume_tb / s4.n_requests
                > s2.total_volume_tb / s2.n_requests)
