"""Figure 12: average slowdown across the grid."""

from conftest import run_once

from repro.experiments import fig12


def test_bench_fig12(benchmark, scale, save_result):
    result = run_once(benchmark, fig12.run, scale)
    save_result("fig12", fig12.render(result))

    # Slowdown trends mirror the wait trends: S4 workloads are evidently
    # worse than the Original ones (paper §4.4).
    for machine in ("Cori", "Theta"):
        sd = {w: result.avg_slowdown[w]["Baseline"] for w in result.workloads
              if w.startswith(machine)}
        assert sd[f"{machine}-S4"] > sd[f"{machine}-Original"]
    # Slowdowns are always >= 1 by definition.
    for w in result.workloads:
        for m in result.methods:
            assert result.avg_slowdown[w][m] >= 1.0
