"""Solver hot-path speedup: memoized GA evaluation vs the reference path.

The evaluation cache (:mod:`repro.core.evalcache`) is a pure perf
feature — ``tests/test_differential.py`` proves its output is
byte-identical to ``eval_cache=False`` — so the only question left is
how much wall-clock it buys.  The design target is **>=1.5x** on a
GA-dominated simulate at the default scale (Theta-S4 under BBSched,
where the MOGA solver dominates the run).  This bench times both sides
with alternated paired runs, harvests the cache's own hit/miss counters
from run telemetry, and writes ``results/BENCH_perf.json``.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.experiments import get_workload, run_one

from conftest import RESULTS_DIR, run_once

#: The speedup the cache was designed to deliver at the default scale.
DESIGN_TARGET = 1.5

#: What the test asserts at default scale and up: deliberately looser
#: than the design target so a noisy shared box doesn't flake
#: (end-to-end pairing swings ~10-20%).  At smoke scale the GA is too
#: small to amortize the cache bookkeeping, so only cache engagement is
#: asserted and the (near-1x) timing is recorded for the trail.
ASSERT_FLOOR = 1.2


def _run(scale, eval_cache):
    trace = get_workload("Theta-S4", scale)
    return run_one(trace, "BBSched", scale, seed=0, eval_cache=eval_cache)


def test_bench_simulate_cache_on(benchmark, scale):
    result = run_once(benchmark, _run, scale, True)
    assert result.makespan > 0


def test_bench_simulate_cache_off(benchmark, scale):
    result = run_once(benchmark, _run, scale, False)
    assert result.makespan > 0


def test_eval_cache_speedup(scale, save_result):
    """Memoized evaluation must beat the reference path end-to-end.

    Median of alternated paired runs (both paths warmed first), so a
    load spike hits the two sides evenly instead of biasing one.  The
    1.5x design target is recorded in the JSON; the assert uses the
    lenient floor above.  Cache effectiveness (hits vs misses) comes
    from the run's own ``ga.eval_cache.*`` counters, collected outside
    the timing loop.
    """
    repeats = 5
    with_cache, without_cache = [], []
    _run(scale, True)  # warm both paths
    _run(scale, False)
    for _ in range(repeats):
        t0 = time.perf_counter()
        _run(scale, True)
        with_cache.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        _run(scale, False)
        without_cache.append(time.perf_counter() - t0)

    # Hit/miss/eviction totals from the engine's metrics registry.
    trace = get_workload("Theta-S4", scale)
    metered = run_one(trace, "BBSched", scale, seed=0, eval_cache=True,
                      collect_telemetry=True)
    counters = metered.telemetry.metrics.counters
    cache = {
        key: counters[f"ga.eval_cache.{key}"].value
        for key in ("hits", "misses", "deduped", "evictions")
        if f"ga.eval_cache.{key}" in counters
    }
    evaluated = cache.get("hits", 0) + cache.get("misses", 0)
    hit_rate = cache.get("hits", 0) / evaluated if evaluated else 0.0

    on = sorted(with_cache)[repeats // 2]
    off = sorted(without_cache)[repeats // 2]
    speedup = off / on
    doc = {
        "scale": scale.name,
        "workload": "Theta-S4",
        "method": "BBSched",
        "repeats": repeats,
        "cache_on_s": round(on, 6),
        "cache_off_s": round(off, 6),
        "speedup": round(speedup, 4),
        "design_target_speedup": DESIGN_TARGET,
        "asserted_floor_speedup": ASSERT_FLOOR,
        "cache_counters": cache,
        "cache_hit_rate": round(hit_rate, 6),
    }
    pathlib.Path(RESULTS_DIR).mkdir(exist_ok=True)
    (pathlib.Path(RESULTS_DIR) / "BENCH_perf.json").write_text(
        json.dumps(doc, indent=2) + "\n")
    save_result(
        "eval_cache_speedup",
        "GA evaluation cache speedup (median of %d paired runs)\n"
        "cache on   : %.4fs\n"
        "cache off  : %.4fs\n"
        "speedup    : %.2fx (design target >= %.1fx, asserted >= %.1fx)\n"
        "hit rate   : %.1f%% (%d hits / %d misses / %d deduped / %d evicted)"
        % (repeats, on, off, speedup, DESIGN_TARGET, ASSERT_FLOOR,
           hit_rate * 100.0, cache.get("hits", 0), cache.get("misses", 0),
           cache.get("deduped", 0), cache.get("evictions", 0)),
    )
    # The cache must really engage — a silent no-op would "pass" at 1.0x.
    assert cache.get("hits", 0) > 0
    if scale.name != "smoke":
        assert speedup >= ASSERT_FLOOR
