#!/usr/bin/env python3
"""Schema check for repro telemetry traces (JSONL and Chrome trace_event).

Stdlib-only, so CI can validate an emitted trace without installing the
package.  Exit status 0 means the file is well-formed; any violation
prints a diagnostic and exits 1.

Usage::

    python tools/validate_trace.py TRACE [--format auto|jsonl|chrome]
                                         [--expect SPAN_NAME ...]

``--expect`` additionally requires at least one span with the given name
(repeatable) — CI uses it to prove a traced simulation actually recorded
``schedule_pass`` / ``ga_solve`` spans.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import Any, Dict, Iterable, List, Tuple

#: JSONL record types the exporter may emit.
JSONL_TYPES = {"meta", "span", "instant", "metrics"}
#: Chrome trace_event phases the exporter may emit.
CHROME_PHASES = {"X", "i", "M"}


class ValidationFailure(Exception):
    """A schema violation, with enough context to locate it."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ValidationFailure(message)


def _check_number(record: Dict[str, Any], key: str, where: str,
                  minimum: float = 0.0) -> None:
    value = record.get(key)
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             f"{where}: {key!r} must be a number, got {value!r}")
    _require(value >= minimum, f"{where}: {key!r} must be >= {minimum}, got {value}")


def _check_attrs(record: Dict[str, Any], key: str, where: str) -> None:
    attrs = record.get(key, {})
    _require(isinstance(attrs, dict), f"{where}: {key!r} must be an object")


# --- JSONL -------------------------------------------------------------------
def validate_jsonl(lines: Iterable[str]) -> Counter:
    """Validate a JSON Lines trace; returns span-name counts."""
    spans: Counter = Counter()
    saw_meta = False
    n = 0
    for n, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        where = f"line {n}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValidationFailure(f"{where}: not valid JSON ({exc})") from None
        _require(isinstance(record, dict), f"{where}: record must be an object")
        rtype = record.get("type")
        _require(rtype in JSONL_TYPES,
                 f"{where}: unknown record type {rtype!r} (known: {sorted(JSONL_TYPES)})")
        if rtype == "meta":
            _require(n == 1, f"{where}: 'meta' must be the first record")
            saw_meta = True
        elif rtype == "span":
            _require(isinstance(record.get("name"), str) and record["name"],
                     f"{where}: span needs a non-empty string 'name'")
            _check_number(record, "ts", where)
            _check_number(record, "dur", where)
            _check_number(record, "depth", where)
            _check_number(record, "tid", where)
            _check_attrs(record, "attrs", where)
            spans[record["name"]] += 1
        elif rtype == "instant":
            _require(isinstance(record.get("name"), str) and record["name"],
                     f"{where}: instant needs a non-empty string 'name'")
            _check_number(record, "ts", where)
            _check_attrs(record, "attrs", where)
        elif rtype == "metrics":
            for section in ("counters", "gauges", "histograms"):
                _require(isinstance(record.get(section), dict),
                         f"{where}: metrics record needs object {section!r}")
    _require(n > 0, "empty trace file")
    _require(saw_meta, "missing 'meta' header record")
    return spans


# --- Chrome trace_event ------------------------------------------------------
def validate_chrome(text: str) -> Counter:
    """Validate a Chrome trace_event JSON document; returns span counts."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationFailure(f"not valid JSON ({exc})") from None
    _require(isinstance(doc, dict), "top level must be a JSON object")
    events = doc.get("traceEvents")
    _require(isinstance(events, list), "missing 'traceEvents' list")
    _require(len(events) > 0, "'traceEvents' is empty")
    spans: Counter = Counter()
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        _require(isinstance(event, dict), f"{where}: event must be an object")
        _require(isinstance(event.get("name"), str) and event["name"],
                 f"{where}: needs a non-empty string 'name'")
        phase = event.get("ph")
        _require(phase in CHROME_PHASES,
                 f"{where}: unknown phase {phase!r} (known: {sorted(CHROME_PHASES)})")
        _require("pid" in event and "tid" in event, f"{where}: needs pid and tid")
        if phase == "M":
            continue
        _check_number(event, "ts", where)
        _check_attrs(event, "args", where)
        if phase == "X":
            _check_number(event, "dur", where)
            spans[event["name"]] += 1
    return spans


def validate_file(path: str, fmt: str = "auto") -> Tuple[str, Counter]:
    """Validate ``path``; returns (resolved format, span-name counts)."""
    with open(path) as fh:
        text = fh.read()
    if fmt == "auto":
        fmt = "chrome" if text.lstrip().startswith("{\"traceEvents\"") or \
            "\"traceEvents\"" in text[:200] else "jsonl"
    if fmt == "chrome":
        return fmt, validate_chrome(text)
    return fmt, validate_jsonl(text.splitlines())


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace file to validate")
    parser.add_argument("--format", default="auto",
                        choices=("auto", "jsonl", "chrome"))
    parser.add_argument("--expect", action="append", default=[],
                        metavar="SPAN_NAME",
                        help="require at least one span with this name (repeatable)")
    args = parser.parse_args(argv)
    try:
        fmt, spans = validate_file(args.trace, args.format)
        missing = [name for name in args.expect if spans.get(name, 0) == 0]
        if missing:
            raise ValidationFailure(
                f"expected span(s) not found: {missing}; present: {sorted(spans)}"
            )
    except ValidationFailure as exc:
        print(f"INVALID {args.trace}: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"ERROR: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 1
    total = sum(spans.values())
    print(f"OK {args.trace} ({fmt}): {total} spans over {len(spans)} names")
    for name, count in spans.most_common():
        print(f"  {name:<22} {count}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
