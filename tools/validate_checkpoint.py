#!/usr/bin/env python3
"""Integrity check for repro checkpoint files and results ledgers.

Stdlib-only, so CI can audit durability artifacts without installing the
package.  Exit status 0 means the file is well-formed; any violation
prints a diagnostic and exits 1.

Usage::

    python tools/validate_checkpoint.py FILE
        [--kind auto|checkpoint|ledger|journal]
        [--expect-workload NAME] [--expect-method NAME]
        [--min-cells N] [--require-complete]

A *checkpoint* is one JSON header line (magic, format version, payload
length, payload SHA-256, run manifest) followed by a binary payload; the
validator re-hashes the payload, so truncation and corruption both fail.
A *ledger* is JSONL of completed grid cells whose base64 payloads are
individually hashed; a truncated final line (SIGKILL mid-append) is
reported but tolerated, matching the loader's semantics.
A *journal* is the simulation service's request lifecycle JSONL
(``service-request`` → ``service-running``* → one terminal record); the
validator audits the exactly-once property — no id accepted twice, no
lifecycle record for an unaccepted id, at most one terminal record per
id — and re-hashes every ``done`` payload.  Structural damage on the
final line (torn append) is tolerated; exactly-once violations are not,
anywhere.
"""

from __future__ import annotations

import argparse
import base64
import hashlib
import json
import sys
from typing import Any, Dict, List, Tuple

MAGIC = "repro-ckpt"
FORMAT_VERSION = 1
LEDGER_VERSION = 1
JOURNAL_VERSION = 1
MANIFEST_FIELDS = ("sim_time", "jobs_total", "jobs_terminal",
                   "events_pending", "created_unix", "meta")
SERVICE_KINDS = ("service-request", "service-running", "service-done",
                 "service-failed", "service-quarantined", "service-cancelled")
TERMINAL_SERVICE_KINDS = frozenset(SERVICE_KINDS[2:])


class ValidationFailure(Exception):
    """An integrity violation, with enough context to locate it."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ValidationFailure(message)


# --- checkpoint files --------------------------------------------------------
def validate_checkpoint(path: str) -> Dict[str, Any]:
    """Validate one checkpoint file; returns its header."""
    with open(path, "rb") as fh:
        line = fh.readline(1 << 20)
        payload = fh.read()
    _require(line.endswith(b"\n"), "truncated header (no newline in first 1MiB)")
    try:
        header = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationFailure(f"header is not valid JSON ({exc})") from None
    _require(isinstance(header, dict), "header must be a JSON object")
    _require(header.get("magic") == MAGIC,
             f"bad magic {header.get('magic')!r} (want {MAGIC!r})")
    _require(header.get("version") == FORMAT_VERSION,
             f"format version {header.get('version')!r}, validator reads "
             f"{FORMAT_VERSION}")
    _require(isinstance(header.get("payload_bytes"), int),
             "'payload_bytes' missing or not an integer")
    _require(isinstance(header.get("payload_sha256"), str),
             "'payload_sha256' missing or not a string")
    manifest = header.get("manifest")
    _require(isinstance(manifest, dict), "'manifest' missing or not an object")
    for field in MANIFEST_FIELDS:
        _require(field in manifest, f"manifest missing field {field!r}")
    _require(isinstance(manifest["meta"], dict), "manifest 'meta' must be an object")
    for field in ("sim_time", "created_unix"):
        value = manifest[field]
        _require(isinstance(value, (int, float)) and value >= 0,
                 f"manifest {field!r} must be a non-negative number, got {value!r}")
    for field in ("jobs_total", "jobs_terminal", "events_pending"):
        value = manifest[field]
        _require(isinstance(value, int) and value >= 0,
                 f"manifest {field!r} must be a non-negative integer, got {value!r}")
    _require(manifest["jobs_terminal"] <= manifest["jobs_total"],
             "manifest has more terminal jobs than total jobs")
    _require(len(payload) == header["payload_bytes"],
             f"payload is {len(payload)} bytes, header promised "
             f"{header['payload_bytes']} (truncated write?)")
    digest = hashlib.sha256(payload).hexdigest()
    _require(digest == header["payload_sha256"],
             "payload SHA-256 mismatch (corrupt checkpoint)")
    return header


# --- results ledgers ---------------------------------------------------------
def validate_ledger(path: str) -> Tuple[int, int, int]:
    """Validate a ledger; returns (cells, failures, dropped_tail)."""
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        lines = fh.read().splitlines()
    cells = failures = dropped = 0
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        where = f"line {i + 1}"
        last = i == len(lines) - 1
        try:
            record = json.loads(line)
            _require(isinstance(record, dict), f"{where}: record must be an object")
            kind = record.get("kind")
            _require(kind in ("cell", "failure"),
                     f"{where}: unknown record kind {kind!r}")
            _require(record.get("version") == LEDGER_VERSION,
                     f"{where}: ledger version {record.get('version')!r}")
            for field in ("workload", "method", "scale"):
                _require(isinstance(record.get(field), str) and record[field],
                         f"{where}: needs non-empty string {field!r}")
            if kind == "failure":
                _require(isinstance(record.get("attempts"), int),
                         f"{where}: failure needs integer 'attempts'")
                failures += 1
                continue
            payload = base64.b64decode(record.get("payload", ""), validate=True)
            _require(
                hashlib.sha256(payload).hexdigest() == record.get("payload_sha256"),
                f"{where}: cell payload SHA-256 mismatch")
            cells += 1
        except (ValidationFailure, ValueError) as exc:
            if last:
                # SIGKILL mid-append can only damage the final line; the
                # loader drops it and recomputes that cell.
                dropped = 1
                continue
            if isinstance(exc, ValidationFailure):
                raise
            raise ValidationFailure(f"{where}: {exc}") from None
    _require(cells + failures + dropped > 0, "empty ledger")
    return cells, failures, dropped


# --- service request journals ------------------------------------------------
def validate_journal(path: str) -> Dict[str, Any]:
    """Audit a service request journal; returns summary counts.

    Mirrors ``RequestJournal.load``: structural damage on the final line
    only (torn append) is tolerated and counted as ``dropped_tail``;
    exactly-once violations raise wherever they appear.
    """
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        lines = fh.read().splitlines()
    accepted: Dict[str, int] = {}
    terminal: Dict[str, str] = {}
    keys: Dict[str, str] = {}  # request id -> idempotency key
    running = dropped = 0
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        where = f"line {i + 1}"
        last = i == len(lines) - 1
        try:
            record = json.loads(line)
            _require(isinstance(record, dict), f"{where}: record must be an object")
            kind = record.get("kind")
            _require(kind in SERVICE_KINDS,
                     f"{where}: unknown journal record kind {kind!r}")
            _require(record.get("version") == JOURNAL_VERSION,
                     f"{where}: journal version {record.get('version')!r}")
            rid = record.get("id")
            _require(isinstance(rid, str) and rid,
                     f"{where}: {kind} record without a request id")
            if kind == "service-request":
                _require(isinstance(record.get("params"), dict),
                         f"{where}: request {rid!r} has no params object")
            elif kind == "service-running":
                attempt = record.get("attempt")
                _require(isinstance(attempt, int) and attempt >= 1,
                         f"{where}: running record needs integer attempt >= 1")
        except (ValidationFailure, ValueError) as exc:
            if last:
                dropped = 1  # torn append: only the tail can be damaged
                continue
            if isinstance(exc, ValidationFailure):
                raise
            raise ValidationFailure(f"{where}: {exc}") from None
        # Exactly-once audit — strict everywhere, including the tail: a
        # *parseable* record that violates it is real corruption, not a
        # torn write.
        if kind == "service-request":
            _require(rid not in accepted,
                     f"{where}: request {rid!r} accepted twice "
                     "(exactly-once violated)")
            accepted[rid] = i + 1
            key = record["params"].get("idempotency_key")
            if isinstance(key, str) and key:
                _require(key not in keys.values(),
                         f"{where}: idempotency key {key!r} accepted twice "
                         "in one journal (dedup failed)")
                keys[rid] = key
            continue
        _require(rid in accepted,
                 f"{where}: {kind} record for {rid!r}, which was never accepted")
        if kind == "service-running":
            running += 1
            continue
        prior = terminal.get(rid)
        _require(prior is None,
                 f"{where}: second terminal record ({kind}) for {rid!r} — "
                 f"exactly-once violated (already {prior})")
        if kind == "service-done":
            payload = base64.b64decode(record.get("payload", ""), validate=True)
            _require(
                hashlib.sha256(payload).hexdigest() == record.get("payload_sha256"),
                f"{where}: done payload SHA-256 mismatch for {rid!r}")
        terminal[rid] = kind
    _require(bool(accepted) or dropped, "empty journal")
    outcomes = {k.replace("service-", ""): 0 for k in TERMINAL_SERVICE_KINDS}
    for kind in terminal.values():
        outcomes[kind.replace("service-", "")] += 1
    return {
        "accepted": len(accepted),
        "running_records": running,
        "outcomes": outcomes,
        "pending": sorted(r for r in accepted if r not in terminal),
        "dropped_tail": dropped,
        "keys": {
            key: {"id": rid,
                  "outcome": terminal.get(rid, "pending").replace(
                      "service-", "")}
            for rid, key in keys.items()
        },
    }


# --- sharded journals (union audit) ------------------------------------------
def validate_shards(paths: List[str]) -> Dict[str, Any]:
    """Audit the union of N shard journals at the idempotency-key level.

    Each journal is first audited individually (``validate_journal``).
    Then, per key across *all* shards, the sharded exactly-once rule is
    enforced: **at most one effective run** — one ``done``/``failed``/
    ``quarantined`` outcome; every additional record for that key must
    be ``cancelled`` (a failed-over duplicate the router reconciled) or
    still pending.  Two effective outcomes for one key means a request
    ran twice — the exact bug shard failover exists to prevent.
    """
    per_shard: Dict[str, Any] = {}
    by_key: Dict[str, List[Tuple[str, str, str]]] = {}
    for path in paths:
        summary = validate_journal(path)
        per_shard[path] = summary
        for key, info in summary["keys"].items():
            by_key.setdefault(key, []).append(
                (path, info["id"], info["outcome"]))
    effective = {"done", "failed", "quarantined"}
    outcomes: Dict[str, int] = {}
    pending_keys: List[str] = []
    for key, records in sorted(by_key.items()):
        runs = [(p, r, o) for p, r, o in records if o in effective]
        _require(len(runs) <= 1,
                 f"key {key!r} has {len(runs)} effective outcomes across "
                 f"shards — exactly-once violated: "
                 + "; ".join(f"{r}={o} in {p}" for p, r, o in runs))
        others = [o for _, _, o in records if o not in effective]
        _require(all(o in ("cancelled", "pending") for o in others),
                 f"key {key!r} carries unexpected duplicate outcomes "
                 f"{others}")
        if runs:
            outcomes[runs[0][2]] = outcomes.get(runs[0][2], 0) + 1
        else:
            pending_keys.append(key)
        if len(records) > 1:
            outcomes["reconciled_duplicates"] = (
                outcomes.get("reconciled_duplicates", 0) + len(records) - 1)
    return {
        "shards": len(paths),
        "keys": len(by_key),
        "outcomes": outcomes,
        "pending_keys": pending_keys,
        "per_shard": {p: {"accepted": s["accepted"],
                          "outcomes": s["outcomes"],
                          "dropped_tail": s["dropped_tail"]}
                      for p, s in per_shard.items()},
    }


def detect_kind(path: str) -> str:
    with open(path, "rb") as fh:
        first = fh.readline(1 << 20)
    try:
        record = json.loads(first.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return "checkpoint"  # binary tail ⇒ let the checkpoint path diagnose
    if isinstance(record, dict) and record.get("magic") == MAGIC:
        return "checkpoint"
    if isinstance(record, dict) and str(record.get("kind", "")).startswith(
            "service-"):
        return "journal"
    return "ledger"


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("file", nargs="+",
                        help="checkpoint/ledger/journal file(s); multiple "
                             "files imply --kind shards")
    parser.add_argument("--kind", default="auto",
                        choices=("auto", "checkpoint", "ledger", "journal",
                                 "shards"))
    parser.add_argument("--expect-workload", default=None, metavar="NAME",
                        help="require the checkpoint manifest to name this workload")
    parser.add_argument("--expect-method", default=None, metavar="NAME",
                        help="require the checkpoint manifest to name this method")
    parser.add_argument("--min-cells", type=int, default=0, metavar="N",
                        help="require at least N valid cell records in a ledger")
    parser.add_argument("--require-complete", action="store_true",
                        help="fail a journal when any accepted request "
                             "lacks a terminal record")
    args = parser.parse_args(argv)
    path = args.file[0]
    try:
        kind = args.kind
        if len(args.file) > 1 and kind in ("auto", "shards"):
            kind = "shards"
        elif kind == "auto":
            kind = detect_kind(path)
        if kind == "shards":
            summary = validate_shards(args.file)
            if args.require_complete and summary["pending_keys"]:
                raise ValidationFailure(
                    f"{len(summary['pending_keys'])} key(s) without an "
                    f"effective outcome on any shard: "
                    f"{', '.join(summary['pending_keys'][:5])}"
                    + ("..." if len(summary["pending_keys"]) > 5 else ""))
            outcomes = ", ".join(f"{count} {name}" for name, count
                                 in sorted(summary["outcomes"].items()))
            print(f"OK {summary['shards']} shard journal(s): "
                  f"{summary['keys']} keys, {outcomes or 'no outcomes'}, "
                  f"{len(summary['pending_keys'])} pending "
                  f"(exactly-once holds)")
            return 0
        if kind == "checkpoint":
            header = validate_checkpoint(path)
            meta = header["manifest"]["meta"]
            for key, expected in (("workload", args.expect_workload),
                                  ("method", args.expect_method)):
                if expected is not None and meta.get(key) != expected:
                    raise ValidationFailure(
                        f"manifest {key}={meta.get(key)!r}, expected {expected!r}")
            manifest = header["manifest"]
            print(f"OK {path} (checkpoint): "
                  f"{header['payload_bytes']} payload bytes, "
                  f"sim_time={manifest['sim_time']:.0f}s, "
                  f"jobs {manifest['jobs_terminal']}/{manifest['jobs_total']} "
                  f"terminal, {manifest['events_pending']} events pending")
            if meta:
                print("  meta: " + ", ".join(f"{k}={v}" for k, v in sorted(meta.items())))
        elif kind == "journal":
            summary = validate_journal(path)
            if args.require_complete and summary["pending"]:
                raise ValidationFailure(
                    f"{len(summary['pending'])} accepted request(s) without "
                    f"a terminal record: {', '.join(summary['pending'][:5])}"
                    + ("..." if len(summary["pending"]) > 5 else ""))
            outcomes = ", ".join(
                f"{count} {name}"
                for name, count in sorted(summary["outcomes"].items())
                if count)
            tail = ", torn tail dropped" if summary["dropped_tail"] else ""
            print(f"OK {path} (journal): {summary['accepted']} accepted, "
                  f"{outcomes or 'no outcomes'}, "
                  f"{len(summary['pending'])} pending{tail}")
        else:
            cells, failures, dropped = validate_ledger(path)
            if cells < args.min_cells:
                raise ValidationFailure(
                    f"only {cells} valid cell(s), expected >= {args.min_cells}")
            tail = ", truncated tail dropped" if dropped else ""
            print(f"OK {path} (ledger): {cells} cells, "
                  f"{failures} failure records{tail}")
    except ValidationFailure as exc:
        print(f"INVALID {path}: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"ERROR: cannot read {path}: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
