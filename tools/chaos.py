#!/usr/bin/env python3
"""Deterministic chaos harness for the simulation service.

Drives a real ``repro serve`` daemon (subprocess, own process group)
through a *seeded* chaos plan and asserts the service's crash-tolerance
contract end to end:

* worker SIGKILLs mid-task (via per-request chaos directives, keyed to
  the attempt ordinal so every run replays identically);
* artificial hangs that the supervisor's deadline must convert into a
  worker kill + clean retry;
* daemon SIGKILLs (``kill -9`` of the whole process group, workers
  included) at seeded points mid-backlog, followed by a restart that
  must recover the journal and finish every outstanding request;
* torn journal tails (the file truncated mid-record before a restart),
  which recovery must tolerate exactly like a SIGKILL mid-append.

``--network`` switches to the *sharded network* plan: N shard daemons
behind a consistent-hash :class:`~repro.service.shards.ShardRouter`, hit
with network faults instead of worker faults — a shard SIGKILLed and
restarted mid-workload (failover + journal recovery + reconciliation),
a shard black-holed with SIGSTOP (stalled socket: the ambiguous-submit
adoption path), slow-loris connections that must be disconnected by the
io deadline, frames torn mid-JSON, and a corrupted shared-memory trace
segment that attaching workers must fall back from and a restarting
publisher must detect and republish.  The audit is key-level across the
union of all shard journals (``tools/validate_checkpoint.py`` ``--kind
shards``): every request exactly one effective outcome, duplicates only
ever ``cancelled``.

After the plan runs, the harness audits the journal with
``RequestJournal.load(verify_payloads=True)`` — which itself raises on
any exactly-once violation — and cross-checks that every submitted
request has exactly one terminal record.  The report (JSON) carries the
outcome histogram and per-restart recovery times, and is what
``benchmarks/test_bench_service.py`` distils into ``BENCH_service.json``.

Usage::

    python tools/chaos.py --seed 0 --requests 6 --daemon-kills 1 \
        --scale smoke --report chaos_report.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(REPO_SRC))

from repro.errors import CheckpointError, ServiceError, ShardError  # noqa: E402
from repro.service import RequestJournal, ServiceClient  # noqa: E402

TERMINAL = frozenset({"done", "failed", "quarantined"})


@dataclass
class ChaosPlan:
    """One reproducible chaos scenario (everything derives from seed)."""

    seed: int = 0
    requests: int = 6
    #: fraction of requests that SIGKILL their worker on attempt 1.
    crash_fraction: float = 0.34
    #: fraction of requests that hang past the deadline on attempt 1.
    hang_fraction: float = 0.17
    #: requests that crash on *every* attempt (must end quarantined).
    poison_requests: int = 0
    #: times the daemon itself is SIGKILL'd mid-backlog and restarted.
    daemon_kills: int = 1
    #: tear the journal's final line before each restart.
    truncate_tail: bool = False
    scale: str = "smoke"
    workers: int = 2
    deadline: float = 20.0
    retries: int = 3
    quarantine_after: int = 2
    high_water: int = 64
    workloads: tuple = ("Cori-S1", "Theta-S1")
    methods: tuple = ("Baseline",)
    #: overall wall-clock budget for the whole plan.
    timeout: float = 600.0


class ChaosHarness:
    """Runs one :class:`ChaosPlan` against a live daemon subprocess."""

    def __init__(self, plan: ChaosPlan, workdir: str) -> None:
        self.plan = plan
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.socket_path = str(self.workdir / "chaos.sock")
        self.journal_path = str(self.workdir / "chaos.jsonl")
        self.log_path = self.workdir / "daemon.log"
        self.client = ServiceClient(self.socket_path, timeout=10.0)
        self.rng = random.Random(plan.seed)
        self.proc: Optional[subprocess.Popen] = None
        self.recoveries: List[Dict[str, float]] = []
        self.kills_done = 0
        self.tails_torn = 0

    # --- daemon lifecycle --------------------------------------------------------
    def start_daemon(self) -> float:
        """Launch (or relaunch) the daemon; returns seconds until ready."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC)
        env["REPRO_SCALE"] = self.plan.scale
        argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--socket", self.socket_path,
            "--journal", self.journal_path,
            "--workers", str(self.plan.workers),
            "--deadline", str(self.plan.deadline),
            "--retries", str(self.plan.retries),
            "--quarantine-after", str(self.plan.quarantine_after),
            "--high-water", str(self.plan.high_water),
            "--allow-chaos",
        ]
        t0 = time.monotonic()
        with open(self.log_path, "a") as log:
            # Own process group, so SIGKILLing the daemon takes its
            # forked workers down too — a whole-node crash, not a tidy one.
            self.proc = subprocess.Popen(
                argv, stdout=log, stderr=subprocess.STDOUT, env=env,
                start_new_session=True)
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"daemon exited during startup (rc={self.proc.returncode}); "
                    f"see {self.log_path}")
            if self.client.alive():
                return time.monotonic() - t0
            time.sleep(0.05)
        raise RuntimeError(f"daemon not ready within 60s; see {self.log_path}")

    def kill_daemon(self) -> None:
        """SIGKILL the daemon's whole process group (workers included)."""
        assert self.proc is not None
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except ProcessLookupError:  # pragma: no cover - already gone
            pass
        self.proc.wait(30)
        self.kills_done += 1

    def tear_journal_tail(self) -> None:
        """Truncate the journal mid-final-record (torn append)."""
        path = Path(self.journal_path)
        if not path.exists():
            return
        data = path.read_bytes()
        if len(data) < 40:
            return
        # Cut inside the final line: recovery must drop exactly that line.
        cut = self.rng.randrange(10, 30)
        path.write_bytes(data[:-cut])
        self.tails_torn += 1

    def shutdown_daemon(self) -> None:
        try:
            self.client.shutdown(mode="now")
            if self.proc is not None:
                self.proc.wait(30)
        except (ServiceError, subprocess.TimeoutExpired):
            if self.proc is not None and self.proc.poll() is None:
                self.kill_daemon()

    # --- the plan ----------------------------------------------------------------
    def build_requests(self) -> List[Dict[str, Any]]:
        """The seeded request list: params + intended chaos per request."""
        plan = self.plan
        specs: List[Dict[str, Any]] = []
        for i in range(plan.requests):
            spec: Dict[str, Any] = {
                "workload": self.rng.choice(plan.workloads),
                "method": self.rng.choice(plan.methods),
                "scale": plan.scale,
                "seed": 1000 + i,
            }
            roll = self.rng.random()
            if i < plan.poison_requests:
                spec["chaos"] = {"crash_attempts": -1}
                spec["expect"] = "quarantined"
            elif roll < plan.crash_fraction:
                spec["chaos"] = {"crash_attempts": 1}
                spec["expect"] = "done"
            elif roll < plan.crash_fraction + plan.hang_fraction:
                spec["chaos"] = {"hang_attempts": 1,
                                 "hang_seconds": plan.deadline * 10}
                spec["expect"] = "done"
            else:
                spec["expect"] = "done"
            specs.append(spec)
        return specs

    def submit_all(self, specs: List[Dict[str, Any]]) -> Dict[str, Dict]:
        """Submit every spec (retrying 429 shed); returns id → spec."""
        by_id: Dict[str, Dict] = {}
        for spec in specs:
            params = {k: v for k, v in spec.items() if k != "expect"}
            while True:
                try:
                    accepted = self.client.submit(**params)
                    break
                except ServiceError as exc:
                    if exc.code != 429:
                        raise
                    time.sleep(0.2)  # shed: back off and retry
            by_id[accepted["id"]] = spec
        return by_id

    def run(self) -> Dict[str, Any]:
        plan = self.plan
        t_start = time.monotonic()
        ready = self.start_daemon()
        self.recoveries.append({"ready_s": ready, "drain_s": 0.0})
        specs = self.build_requests()
        by_id = self.submit_all(specs)
        pending = set(by_id)
        outcomes: Dict[str, str] = {}

        # Seeded kill points: after the k-th terminal outcome is observed.
        kill_points = sorted(
            self.rng.sample(range(1, max(plan.requests, 2)),
                            min(plan.daemon_kills, plan.requests - 1)))
        deadline = time.monotonic() + plan.timeout
        while pending:
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"chaos plan not finished within {plan.timeout}s; "
                    f"pending: {sorted(pending)}")
            for rid in sorted(pending):
                try:
                    status = self.client.status(rid)
                except ServiceError:
                    break  # daemon unreachable (restarting) — re-poll
                if status["state"] in TERMINAL:
                    outcomes[rid] = status["state"]
                    pending.discard(rid)
            if kill_points and len(outcomes) >= kill_points[0] and pending:
                kill_points.pop(0)
                self.kill_daemon()
                if plan.truncate_tail:
                    self.tear_journal_tail()
                t_restart = time.monotonic()
                ready = self.start_daemon()
                # The restarted daemon's journal view is the truth now: a
                # torn tail may have reverted a result we already counted
                # (the daemon recomputes it), so re-track those too.
                backlog = set()
                for rid in by_id:
                    if self.client.status(rid)["state"] not in TERMINAL:
                        backlog.add(rid)
                        outcomes.pop(rid, None)
                pending |= backlog
                # Recovery drain: the whole recovered backlog terminal.
                drained = dict(self._drain(backlog, deadline))
                outcomes.update(drained)
                pending.difference_update(drained)
                self.recoveries.append({
                    "ready_s": ready,
                    "drain_s": time.monotonic() - t_restart - ready,
                })
                continue
            time.sleep(0.1)
        self.shutdown_daemon()
        return self.report(by_id, outcomes, time.monotonic() - t_start)

    def _drain(self, pending: set, deadline: float):
        for rid in sorted(pending):
            remaining = max(deadline - time.monotonic(), 1.0)
            status = self.client.wait(rid, timeout=remaining, poll=0.1)
            yield rid, status["state"]

    # --- audit + report ----------------------------------------------------------
    def audit(self, by_id: Dict[str, Dict]) -> Dict[str, Any]:
        """Exactly-once audit over the journal (raises on violations)."""
        journal = RequestJournal(self.journal_path)
        view = journal.load(verify_payloads=True)  # raises on duplicates
        missing = sorted(set(by_id) - set(view.terminal))
        extra = sorted(set(view.terminal) - set(by_id))
        if missing:
            raise CheckpointError(
                f"requests lost (no terminal record): {missing}")
        if extra:
            raise CheckpointError(
                f"terminal records for never-submitted ids: {extra}")
        mismatches = {
            rid: (spec["expect"], view.state(rid))
            for rid, spec in by_id.items()
            if view.state(rid) != spec["expect"]
        }
        return {
            "exactly_once": True,
            "records_audited": len(view.terminal),
            "dropped_tail": view.dropped_tail,
            "expectation_mismatches": mismatches,
        }

    def report(self, by_id: Dict[str, Dict], outcomes: Dict[str, str],
               elapsed: float) -> Dict[str, Any]:
        histogram: Dict[str, int] = {}
        for state in outcomes.values():
            histogram[state] = histogram.get(state, 0) + 1
        return {
            "plan": asdict(self.plan),
            "outcomes": histogram,
            "per_request": {rid: {"outcome": outcomes[rid],
                                  "expected": by_id[rid]["expect"],
                                  "chaos": by_id[rid].get("chaos")}
                            for rid in sorted(by_id)},
            "daemon_kills": self.kills_done,
            "tails_torn": self.tails_torn,
            "recoveries": self.recoveries,
            "audit": self.audit(by_id),
            "elapsed_s": elapsed,
        }


# --- sharded network chaos -----------------------------------------------------
@dataclass
class NetworkChaosPlan:
    """One reproducible sharded-network chaos scenario."""

    seed: int = 0
    requests: int = 40
    shards: int = 2
    scale: str = "smoke"
    workers: int = 1
    #: shards SIGKILLed (whole process group) and restarted mid-workload.
    shard_kills: int = 1
    #: submits to run between a shard kill and its restart (failover window).
    restart_after_submits: int = 4
    #: SIGSTOP/SIGCONT black-holes (stalled socket → ambiguous adoption).
    blackholes: int = 1
    blackhole_seconds: float = 2.0
    #: connections opened with a partial frame and held (slow loris).
    slow_loris: int = 2
    #: connections closed mid-JSON-frame (torn frames).
    torn_frames: int = 2
    #: flip a byte in a shard's shm segment before its restart.
    corrupt_shm: bool = True
    io_deadline: float = 4.0
    client_timeout: float = 5.0
    recover_timeout: float = 60.0
    high_water: int = 512
    workloads: tuple = ("Cori-S1", "Theta-S1")
    methods: tuple = ("Baseline",)
    timeout: float = 900.0


class NetworkChaosHarness:
    """Runs one :class:`NetworkChaosPlan` against N shard daemons."""

    def __init__(self, plan: NetworkChaosPlan, workdir: str) -> None:
        from repro.service.client import ClientRetryPolicy
        from repro.service.shards import ShardRouter

        self.plan = plan
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.rng = random.Random(plan.seed)
        self.endpoints = [str(self.workdir / f"shard{i}.sock")
                          for i in range(plan.shards)]
        self.journals = [str(self.workdir / f"shard{i}.jsonl")
                         for i in range(plan.shards)]
        self.procs: List[Optional[subprocess.Popen]] = [None] * plan.shards
        self.router = ShardRouter(
            self.endpoints, seed=plan.seed, down_after=2,
            recover_timeout=plan.recover_timeout,
            timeout=plan.client_timeout,
            retry=ClientRetryPolicy(attempts=3))
        self.faults: List[Dict[str, Any]] = []
        self._loris_socks: List[Any] = []

    # --- shard lifecycle ---------------------------------------------------------
    def start_shard(self, i: int) -> float:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC)
        env["REPRO_SCALE"] = self.plan.scale
        argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--socket", self.endpoints[i],
            "--journal", self.journals[i],
            "--workers", str(self.plan.workers),
            "--high-water", str(self.plan.high_water),
            "--shard", f"{i}/{self.plan.shards}",
            "--shm-traces",
            "--io-deadline", str(self.plan.io_deadline),
        ]
        t0 = time.monotonic()
        with open(self.workdir / f"shard{i}.log", "a") as log:
            self.procs[i] = subprocess.Popen(
                argv, stdout=log, stderr=subprocess.STDOUT, env=env,
                start_new_session=True)
        client = self.router.clients[self.endpoints[i]]
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            proc = self.procs[i]
            assert proc is not None
            if proc.poll() is not None:
                raise RuntimeError(
                    f"shard {i} exited during startup (rc={proc.returncode}); "
                    f"see {self.workdir / f'shard{i}.log'}")
            if client.alive():
                return time.monotonic() - t0
            time.sleep(0.05)
        raise RuntimeError(f"shard {i} not ready within 60s")

    def kill_shard(self, i: int) -> None:
        proc = self.procs[i]
        assert proc is not None
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except ProcessLookupError:  # pragma: no cover
            pass
        proc.wait(30)
        self.faults.append({"fault": "shard_kill", "shard": i})

    def stop_shard(self, i: int, seconds: float) -> None:
        """SIGSTOP a shard (black hole: accepts bytes, answers nothing)."""
        proc = self.procs[i]
        assert proc is not None
        os.killpg(proc.pid, signal.SIGSTOP)
        self.faults.append({"fault": "blackhole", "shard": i,
                            "seconds": seconds})
        import threading

        def resume() -> None:
            try:
                os.killpg(proc.pid, signal.SIGCONT)
            except ProcessLookupError:  # pragma: no cover
                pass

        timer = threading.Timer(seconds, resume)
        timer.daemon = True
        timer.start()

    # --- raw-socket network faults -------------------------------------------------
    def _raw_connect(self, i: int):
        import socket as socket_mod

        sock = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
        sock.settimeout(self.plan.client_timeout)
        sock.connect(self.endpoints[i])
        return sock

    def inject_slow_loris(self, i: int) -> None:
        """Open a connection, send half a frame, and hold it open.

        The daemon's io deadline must disconnect it; the held socket is
        checked for EOF at the end of the run.
        """
        sock = self._raw_connect(i)
        sock.sendall(b'{"op": "pi')  # never finished, never newline
        self._loris_socks.append((i, sock, time.monotonic()))
        self.faults.append({"fault": "slow_loris", "shard": i})

    def inject_torn_frame(self, i: int) -> None:
        """Send a frame cut mid-JSON and disconnect (mid-frame drop)."""
        sock = self._raw_connect(i)
        try:
            sock.sendall(b'{"op": "status", "id": "r0')
        finally:
            sock.close()
        self.faults.append({"fault": "torn_frame", "shard": i})

    def corrupt_shm_segment(self, i: int) -> Optional[str]:
        """Flip one byte in shard i's published trace segment."""
        client = self.router.clients[self.endpoints[i]]
        try:
            segments = client.stats().get("shm_segments") or []
        except ServiceError:
            return None
        if not segments:
            return None
        name = segments[0]
        path = Path("/dev/shm") / name
        try:
            data = bytearray(path.read_bytes())
        except OSError:  # pragma: no cover - non-Linux shm mount
            return None
        offset = len(data) - 1 - self.rng.randrange(min(64, len(data) // 2))
        data[offset] ^= 0xFF
        path.write_bytes(bytes(data))
        self.faults.append({"fault": "corrupt_shm", "shard": i,
                            "segment": name, "offset": offset})
        return name

    def check_loris_disconnected(self) -> int:
        """Every held slow-loris socket must have been dropped by now."""
        dropped = 0
        for i, sock, opened in self._loris_socks:
            # SIGSTOP blackholes freeze the target's event loop, so the
            # io deadline can land late by up to the stall time.
            budget = (self.plan.io_deadline * 3 + 2.0
                      + self.plan.blackhole_seconds * self.plan.blackholes)
            remaining = max(0.1, opened + budget - time.monotonic())
            sock.settimeout(remaining)
            try:
                data = sock.recv(4096)
            except (TimeoutError, OSError):
                # Name the holder: a worker fork()ed while the
                # connection was open would inherit (and hold) the fd.
                try:
                    diag = subprocess.run(
                        ["ss", "-xp"], capture_output=True, text=True
                    ).stdout
                    held = "\n".join(line for line in diag.splitlines()
                                     if f"shard{i}" in line)
                except OSError:
                    held = "(ss unavailable)"
                alive = self.router.clients[self.endpoints[i]].alive()
                raise RuntimeError(
                    f"slow-loris connection to shard {i} still open after "
                    f"{budget:.0f}s — io deadline not enforced; "
                    f"daemon alive={alive}; ss:\n{held}")
            finally:
                sock.close()
            if data == b"":
                dropped += 1
            else:
                raise RuntimeError(
                    f"slow-loris connection got unexpected data {data[:40]!r}")
        self._loris_socks.clear()
        return dropped

    # --- the plan ------------------------------------------------------------------
    def _key_for_shard(self, i: int) -> str:
        """A fresh key whose primary is shard i (seeded, deterministic)."""
        endpoint = self.endpoints[i]
        while True:
            key = self.router.new_key("bh")
            if self.router.ring.node(key) == endpoint:
                return key

    def _submit_resilient(self, params: Dict[str, Any],
                          pending_restart: List[tuple]) -> Any:
        """One keyed submit that survives shed *and* total outage.

        A 429 is an honest shed: back off and retry.  A
        :class:`ShardError` means every shard was unreachable at once —
        a kill overlapping a blackhole.  Restarts pending on submit
        progress are brought forward (the loop cannot advance to
        trigger them while nothing accepts), and the *same* key is
        retried, which the journals dedup to exactly-once.
        """
        params = dict(params)
        params.setdefault("idempotency_key", self.router.new_key())
        deadline = time.monotonic() + 120.0
        while True:
            try:
                return self.router.submit(**params)
            except ShardError:
                if time.monotonic() > deadline:
                    raise
                if not (self.faults
                        and self.faults[-1].get("fault") == "total_outage"):
                    self.faults.append({"fault": "total_outage"})
                for shard, at in list(pending_restart):
                    pending_restart.remove((shard, at))
                    self.start_shard(shard)
                time.sleep(0.5)
            except ServiceError as exc:
                if exc.code != 429 or time.monotonic() > deadline:
                    raise
                time.sleep(0.2)  # honest shed: back off and retry

    def run(self) -> Dict[str, Any]:
        plan = self.plan
        t_start = time.monotonic()
        for i in range(plan.shards):
            self.start_shard(i)
        # Seeded fault schedule: submit indices at which faults fire.
        fault_indices = sorted(
            self.rng.sample(range(2, max(plan.requests - plan.restart_after_submits - 1, 3)),
                            min(plan.shard_kills + plan.blackholes,
                                plan.requests // 4)))
        kill_schedule = fault_indices[:plan.shard_kills]
        blackhole_schedule = fault_indices[plan.shard_kills:]
        loris_at = {self.rng.randrange(1, plan.requests)
                    for _ in range(plan.slow_loris)}
        torn_at = {self.rng.randrange(1, plan.requests)
                   for _ in range(plan.torn_frames)}

        routed = []
        pending_restart: List[tuple] = []  # (shard, restart_at_index)
        corrupted_segments: List[str] = []
        for n in range(plan.requests):
            for shard, at in list(pending_restart):
                if n >= at:
                    pending_restart.remove((shard, at))
                    self.start_shard(shard)
            if n in loris_at:
                target = self.rng.randrange(plan.shards)
                if self._shard_running(target):
                    self.inject_slow_loris(target)
            if n in torn_at:
                target = self.rng.randrange(plan.shards)
                if self._shard_running(target):
                    self.inject_torn_frame(target)
            if kill_schedule and n == kill_schedule[0]:
                kill_schedule.pop(0)
                victim = self.rng.randrange(plan.shards)
                if plan.corrupt_shm:
                    name = self.corrupt_shm_segment(victim)
                    if name:
                        corrupted_segments.append(name)
                self.kill_shard(victim)
                pending_restart.append(
                    (victim, n + plan.restart_after_submits))
            if blackhole_schedule and n == blackhole_schedule[0]:
                blackhole_schedule.pop(0)
                victim = self.rng.randrange(plan.shards)
                if self._shard_running(victim):
                    key = self._key_for_shard(victim)
                    self.stop_shard(victim, plan.blackhole_seconds)
                    routed.append(self._submit_resilient({
                        "workload": self.rng.choice(plan.workloads),
                        "method": self.rng.choice(plan.methods),
                        "scale": plan.scale, "seed": 5000 + n,
                        "idempotency_key": key,
                    }, pending_restart))
            spec = {
                "workload": self.rng.choice(plan.workloads),
                "method": self.rng.choice(plan.methods),
                "scale": plan.scale,
                "seed": 1000 + n,
            }
            routed.append(self._submit_resilient(spec, pending_restart))
        # Everyone home: restart anything still down, then drain.
        for shard, _ in pending_restart:
            self.start_shard(shard)
        self.router.check()  # final health sweep (triggers reconciliation)
        remaining = max(plan.timeout - (time.monotonic() - t_start), 30.0)
        results = self.router.wait_all(routed, timeout=remaining, poll=0.1)
        states = {key: status["state"] for key, status in results.items()}
        not_done = {k: s for k, s in states.items() if s != "done"}
        if not_done:
            raise RuntimeError(
                f"{len(not_done)} request(s) not done: {not_done}")
        loris_dropped = self.check_loris_disconnected()
        shm_corrupt_seen = self._shm_corruption_detected()
        for i in range(plan.shards):
            try:
                self.router.clients[self.endpoints[i]].shutdown(mode="now")
                proc = self.procs[i]
                if proc is not None:
                    proc.wait(30)
            except (ServiceError, subprocess.TimeoutExpired):
                if self._shard_running(i):
                    self.kill_shard(i)
        return self.report(routed, states, corrupted_segments,
                           loris_dropped, shm_corrupt_seen,
                           time.monotonic() - t_start)

    def _shard_running(self, i: int) -> bool:
        proc = self.procs[i]
        return proc is not None and proc.poll() is None

    def _shm_corruption_detected(self) -> int:
        """Sum of publisher-side corruption detections across shards."""
        total = 0
        for endpoint in self.endpoints:
            try:
                stats = self.router.clients[endpoint].stats()
            except ServiceError:
                continue
            counters = (stats.get("metrics") or {}).get("counters") or {}
            total += int(counters.get("service.shm_corrupt", 0))
        return total

    # --- audit + report ------------------------------------------------------------
    def audit(self, routed: List[Any]) -> Dict[str, Any]:
        """Key-level exactly-once across the union of all shard journals."""
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        from validate_checkpoint import ValidationFailure, validate_shards

        existing = [p for p in self.journals if Path(p).exists()]
        try:
            summary = validate_shards(existing)
        except ValidationFailure as exc:
            raise RuntimeError(f"sharded journal audit failed: {exc}") from exc
        submitted = {r.key for r in routed}
        return {
            "exactly_once": True,
            "keys_submitted": len(submitted),
            "keys_audited": summary["keys"],
            "outcomes": summary["outcomes"],
            "pending_keys": summary["pending_keys"],
            "per_shard": summary["per_shard"],
        }

    def report(self, routed: List[Any], states: Dict[str, str],
               corrupted: List[str], loris_dropped: int,
               shm_corrupt_seen: int, elapsed: float) -> Dict[str, Any]:
        audit = self.audit(routed)
        if audit["pending_keys"]:
            raise RuntimeError(
                f"keys without an effective outcome: {audit['pending_keys']}")
        if audit["keys_audited"] < len(routed):
            raise RuntimeError(
                f"journals hold {audit['keys_audited']} keys but "
                f"{len(routed)} were submitted — requests lost")
        histogram: Dict[str, int] = {}
        for state in states.values():
            histogram[state] = histogram.get(state, 0) + 1
        return {
            "plan": asdict(self.plan),
            "outcomes": histogram,
            "faults": self.faults,
            "router": {
                "failovers": self.router.failovers,
                "adoptions": self.router.adoptions,
                "forced_failovers": self.router.forced_failovers,
                "reconciled": self.router.reconciled,
                "conflicts": self.router.conflicts,
            },
            "slow_loris_dropped": loris_dropped,
            "shm_segments_corrupted": corrupted,
            "shm_corruption_detected": shm_corrupt_seen,
            "audit": audit,
            "elapsed_s": elapsed,
        }


def run_network_chaos(plan: NetworkChaosPlan,
                      workdir: Optional[str] = None) -> Dict[str, Any]:
    """Run one sharded network plan end to end; returns the report dict."""
    def _run(directory: str) -> Dict[str, Any]:
        harness = NetworkChaosHarness(plan, directory)
        try:
            return harness.run()
        finally:
            for i in range(plan.shards):
                proc = harness.procs[i]
                if proc is not None and proc.poll() is None:
                    try:
                        os.killpg(proc.pid, signal.SIGCONT)
                    except ProcessLookupError:
                        pass
                    harness.kill_shard(i)

    if workdir is not None:
        return _run(workdir)
    with tempfile.TemporaryDirectory(prefix="repro-netchaos-") as tmp:
        return _run(tmp)


def run_chaos(plan: ChaosPlan, workdir: Optional[str] = None) -> Dict[str, Any]:
    """Run one plan end to end; returns the report dict."""
    if workdir is not None:
        return ChaosHarness(plan, workdir).run()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        harness = ChaosHarness(plan, tmp)
        try:
            return harness.run()
        finally:
            if harness.proc is not None and harness.proc.poll() is None:
                harness.kill_daemon()


def _network_main(args: argparse.Namespace) -> int:
    plan = NetworkChaosPlan(
        seed=args.seed, requests=args.requests, shards=args.shards,
        scale=args.scale, workers=args.workers,
        shard_kills=args.daemon_kills, blackholes=args.blackholes,
        blackhole_seconds=args.blackhole_seconds,
        slow_loris=args.slow_loris, torn_frames=args.torn_frames,
        corrupt_shm=not args.no_corrupt_shm,
        io_deadline=args.io_deadline, timeout=args.timeout,
    )
    report = run_network_chaos(plan, workdir=args.workdir)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.report:
        Path(args.report).write_text(text + "\n")
        print(f"wrote network chaos report to {args.report}")
    audit = report["audit"]
    router = report["router"]
    print(f"network chaos seed={plan.seed}: {plan.shards} shard(s), "
          f"{audit['keys_audited']} key(s) audited exactly-once, "
          f"outcomes {report['outcomes']}, "
          f"failovers={router['failovers']} "
          f"adoptions={router['adoptions']} "
          f"reconciled={router['reconciled']} "
          f"loris_dropped={report['slow_loris_dropped']}")
    return 0 if audit["exactly_once"] and not audit["pending_keys"] else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Deterministic chaos harness for the simulation service")
    parser.add_argument("--network", action="store_true",
                        help="run the sharded network plan instead of the "
                             "single-daemon worker plan")
    parser.add_argument("--shards", type=int, default=2,
                        help="shard count for --network")
    parser.add_argument("--blackholes", type=int, default=1,
                        help="SIGSTOP black-holes for --network")
    parser.add_argument("--blackhole-seconds", type=float, default=2.0)
    parser.add_argument("--slow-loris", type=int, default=2,
                        help="held half-frame connections for --network")
    parser.add_argument("--torn-frames", type=int, default=2,
                        help="mid-JSON disconnects for --network")
    parser.add_argument("--no-corrupt-shm", action="store_true",
                        help="skip the shared-memory byte-flip fault")
    parser.add_argument("--io-deadline", type=float, default=4.0,
                        help="per-connection io deadline for --network")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--requests", type=int, default=6)
    parser.add_argument("--crash-fraction", type=float, default=0.34)
    parser.add_argument("--hang-fraction", type=float, default=0.17)
    parser.add_argument("--poison-requests", type=int, default=0)
    parser.add_argument("--daemon-kills", type=int, default=1)
    parser.add_argument("--truncate-tail", action="store_true")
    parser.add_argument("--scale", default="smoke")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--deadline", type=float, default=20.0)
    parser.add_argument("--retries", type=int, default=3)
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument("--workdir", default=None,
                        help="keep artifacts here instead of a temp dir")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write the JSON report to PATH")
    args = parser.parse_args(argv)
    if args.network:
        return _network_main(args)
    plan = ChaosPlan(
        seed=args.seed, requests=args.requests,
        crash_fraction=args.crash_fraction, hang_fraction=args.hang_fraction,
        poison_requests=args.poison_requests, daemon_kills=args.daemon_kills,
        truncate_tail=args.truncate_tail, scale=args.scale,
        workers=args.workers, deadline=args.deadline, retries=args.retries,
        timeout=args.timeout,
    )
    report = run_chaos(plan, workdir=args.workdir)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.report:
        Path(args.report).write_text(text + "\n")
        print(f"wrote chaos report to {args.report}")
    summary = report["outcomes"]
    audit = report["audit"]
    print(f"chaos seed={plan.seed}: {report['daemon_kills']} daemon kill(s), "
          f"outcomes {summary}, exactly_once={audit['exactly_once']}, "
          f"mismatches={len(audit['expectation_mismatches'])}")
    return 0 if not audit["expectation_mismatches"] else 1


if __name__ == "__main__":
    sys.exit(main())
