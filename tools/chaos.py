#!/usr/bin/env python3
"""Deterministic chaos harness for the simulation service.

Drives a real ``repro serve`` daemon (subprocess, own process group)
through a *seeded* chaos plan and asserts the service's crash-tolerance
contract end to end:

* worker SIGKILLs mid-task (via per-request chaos directives, keyed to
  the attempt ordinal so every run replays identically);
* artificial hangs that the supervisor's deadline must convert into a
  worker kill + clean retry;
* daemon SIGKILLs (``kill -9`` of the whole process group, workers
  included) at seeded points mid-backlog, followed by a restart that
  must recover the journal and finish every outstanding request;
* torn journal tails (the file truncated mid-record before a restart),
  which recovery must tolerate exactly like a SIGKILL mid-append.

After the plan runs, the harness audits the journal with
``RequestJournal.load(verify_payloads=True)`` — which itself raises on
any exactly-once violation — and cross-checks that every submitted
request has exactly one terminal record.  The report (JSON) carries the
outcome histogram and per-restart recovery times, and is what
``benchmarks/test_bench_service.py`` distils into ``BENCH_service.json``.

Usage::

    python tools/chaos.py --seed 0 --requests 6 --daemon-kills 1 \
        --scale smoke --report chaos_report.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(REPO_SRC))

from repro.errors import CheckpointError, ServiceError  # noqa: E402
from repro.service import RequestJournal, ServiceClient  # noqa: E402

TERMINAL = frozenset({"done", "failed", "quarantined"})


@dataclass
class ChaosPlan:
    """One reproducible chaos scenario (everything derives from seed)."""

    seed: int = 0
    requests: int = 6
    #: fraction of requests that SIGKILL their worker on attempt 1.
    crash_fraction: float = 0.34
    #: fraction of requests that hang past the deadline on attempt 1.
    hang_fraction: float = 0.17
    #: requests that crash on *every* attempt (must end quarantined).
    poison_requests: int = 0
    #: times the daemon itself is SIGKILL'd mid-backlog and restarted.
    daemon_kills: int = 1
    #: tear the journal's final line before each restart.
    truncate_tail: bool = False
    scale: str = "smoke"
    workers: int = 2
    deadline: float = 20.0
    retries: int = 3
    quarantine_after: int = 2
    high_water: int = 64
    workloads: tuple = ("Cori-S1", "Theta-S1")
    methods: tuple = ("Baseline",)
    #: overall wall-clock budget for the whole plan.
    timeout: float = 600.0


class ChaosHarness:
    """Runs one :class:`ChaosPlan` against a live daemon subprocess."""

    def __init__(self, plan: ChaosPlan, workdir: str) -> None:
        self.plan = plan
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.socket_path = str(self.workdir / "chaos.sock")
        self.journal_path = str(self.workdir / "chaos.jsonl")
        self.log_path = self.workdir / "daemon.log"
        self.client = ServiceClient(self.socket_path, timeout=10.0)
        self.rng = random.Random(plan.seed)
        self.proc: Optional[subprocess.Popen] = None
        self.recoveries: List[Dict[str, float]] = []
        self.kills_done = 0
        self.tails_torn = 0

    # --- daemon lifecycle --------------------------------------------------------
    def start_daemon(self) -> float:
        """Launch (or relaunch) the daemon; returns seconds until ready."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC)
        env["REPRO_SCALE"] = self.plan.scale
        argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--socket", self.socket_path,
            "--journal", self.journal_path,
            "--workers", str(self.plan.workers),
            "--deadline", str(self.plan.deadline),
            "--retries", str(self.plan.retries),
            "--quarantine-after", str(self.plan.quarantine_after),
            "--high-water", str(self.plan.high_water),
            "--allow-chaos",
        ]
        t0 = time.monotonic()
        with open(self.log_path, "a") as log:
            # Own process group, so SIGKILLing the daemon takes its
            # forked workers down too — a whole-node crash, not a tidy one.
            self.proc = subprocess.Popen(
                argv, stdout=log, stderr=subprocess.STDOUT, env=env,
                start_new_session=True)
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"daemon exited during startup (rc={self.proc.returncode}); "
                    f"see {self.log_path}")
            if self.client.alive():
                return time.monotonic() - t0
            time.sleep(0.05)
        raise RuntimeError(f"daemon not ready within 60s; see {self.log_path}")

    def kill_daemon(self) -> None:
        """SIGKILL the daemon's whole process group (workers included)."""
        assert self.proc is not None
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except ProcessLookupError:  # pragma: no cover - already gone
            pass
        self.proc.wait(30)
        self.kills_done += 1

    def tear_journal_tail(self) -> None:
        """Truncate the journal mid-final-record (torn append)."""
        path = Path(self.journal_path)
        if not path.exists():
            return
        data = path.read_bytes()
        if len(data) < 40:
            return
        # Cut inside the final line: recovery must drop exactly that line.
        cut = self.rng.randrange(10, 30)
        path.write_bytes(data[:-cut])
        self.tails_torn += 1

    def shutdown_daemon(self) -> None:
        try:
            self.client.shutdown(mode="now")
            if self.proc is not None:
                self.proc.wait(30)
        except (ServiceError, subprocess.TimeoutExpired):
            if self.proc is not None and self.proc.poll() is None:
                self.kill_daemon()

    # --- the plan ----------------------------------------------------------------
    def build_requests(self) -> List[Dict[str, Any]]:
        """The seeded request list: params + intended chaos per request."""
        plan = self.plan
        specs: List[Dict[str, Any]] = []
        for i in range(plan.requests):
            spec: Dict[str, Any] = {
                "workload": self.rng.choice(plan.workloads),
                "method": self.rng.choice(plan.methods),
                "scale": plan.scale,
                "seed": 1000 + i,
            }
            roll = self.rng.random()
            if i < plan.poison_requests:
                spec["chaos"] = {"crash_attempts": -1}
                spec["expect"] = "quarantined"
            elif roll < plan.crash_fraction:
                spec["chaos"] = {"crash_attempts": 1}
                spec["expect"] = "done"
            elif roll < plan.crash_fraction + plan.hang_fraction:
                spec["chaos"] = {"hang_attempts": 1,
                                 "hang_seconds": plan.deadline * 10}
                spec["expect"] = "done"
            else:
                spec["expect"] = "done"
            specs.append(spec)
        return specs

    def submit_all(self, specs: List[Dict[str, Any]]) -> Dict[str, Dict]:
        """Submit every spec (retrying 429 shed); returns id → spec."""
        by_id: Dict[str, Dict] = {}
        for spec in specs:
            params = {k: v for k, v in spec.items() if k != "expect"}
            while True:
                try:
                    accepted = self.client.submit(**params)
                    break
                except ServiceError as exc:
                    if exc.code != 429:
                        raise
                    time.sleep(0.2)  # shed: back off and retry
            by_id[accepted["id"]] = spec
        return by_id

    def run(self) -> Dict[str, Any]:
        plan = self.plan
        t_start = time.monotonic()
        ready = self.start_daemon()
        self.recoveries.append({"ready_s": ready, "drain_s": 0.0})
        specs = self.build_requests()
        by_id = self.submit_all(specs)
        pending = set(by_id)
        outcomes: Dict[str, str] = {}

        # Seeded kill points: after the k-th terminal outcome is observed.
        kill_points = sorted(
            self.rng.sample(range(1, max(plan.requests, 2)),
                            min(plan.daemon_kills, plan.requests - 1)))
        deadline = time.monotonic() + plan.timeout
        while pending:
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"chaos plan not finished within {plan.timeout}s; "
                    f"pending: {sorted(pending)}")
            for rid in sorted(pending):
                try:
                    status = self.client.status(rid)
                except ServiceError:
                    break  # daemon unreachable (restarting) — re-poll
                if status["state"] in TERMINAL:
                    outcomes[rid] = status["state"]
                    pending.discard(rid)
            if kill_points and len(outcomes) >= kill_points[0] and pending:
                kill_points.pop(0)
                self.kill_daemon()
                if plan.truncate_tail:
                    self.tear_journal_tail()
                t_restart = time.monotonic()
                ready = self.start_daemon()
                # The restarted daemon's journal view is the truth now: a
                # torn tail may have reverted a result we already counted
                # (the daemon recomputes it), so re-track those too.
                backlog = set()
                for rid in by_id:
                    if self.client.status(rid)["state"] not in TERMINAL:
                        backlog.add(rid)
                        outcomes.pop(rid, None)
                pending |= backlog
                # Recovery drain: the whole recovered backlog terminal.
                drained = dict(self._drain(backlog, deadline))
                outcomes.update(drained)
                pending.difference_update(drained)
                self.recoveries.append({
                    "ready_s": ready,
                    "drain_s": time.monotonic() - t_restart - ready,
                })
                continue
            time.sleep(0.1)
        self.shutdown_daemon()
        return self.report(by_id, outcomes, time.monotonic() - t_start)

    def _drain(self, pending: set, deadline: float):
        for rid in sorted(pending):
            remaining = max(deadline - time.monotonic(), 1.0)
            status = self.client.wait(rid, timeout=remaining, poll=0.1)
            yield rid, status["state"]

    # --- audit + report ----------------------------------------------------------
    def audit(self, by_id: Dict[str, Dict]) -> Dict[str, Any]:
        """Exactly-once audit over the journal (raises on violations)."""
        journal = RequestJournal(self.journal_path)
        view = journal.load(verify_payloads=True)  # raises on duplicates
        missing = sorted(set(by_id) - set(view.terminal))
        extra = sorted(set(view.terminal) - set(by_id))
        if missing:
            raise CheckpointError(
                f"requests lost (no terminal record): {missing}")
        if extra:
            raise CheckpointError(
                f"terminal records for never-submitted ids: {extra}")
        mismatches = {
            rid: (spec["expect"], view.state(rid))
            for rid, spec in by_id.items()
            if view.state(rid) != spec["expect"]
        }
        return {
            "exactly_once": True,
            "records_audited": len(view.terminal),
            "dropped_tail": view.dropped_tail,
            "expectation_mismatches": mismatches,
        }

    def report(self, by_id: Dict[str, Dict], outcomes: Dict[str, str],
               elapsed: float) -> Dict[str, Any]:
        histogram: Dict[str, int] = {}
        for state in outcomes.values():
            histogram[state] = histogram.get(state, 0) + 1
        return {
            "plan": asdict(self.plan),
            "outcomes": histogram,
            "per_request": {rid: {"outcome": outcomes[rid],
                                  "expected": by_id[rid]["expect"],
                                  "chaos": by_id[rid].get("chaos")}
                            for rid in sorted(by_id)},
            "daemon_kills": self.kills_done,
            "tails_torn": self.tails_torn,
            "recoveries": self.recoveries,
            "audit": self.audit(by_id),
            "elapsed_s": elapsed,
        }


def run_chaos(plan: ChaosPlan, workdir: Optional[str] = None) -> Dict[str, Any]:
    """Run one plan end to end; returns the report dict."""
    if workdir is not None:
        return ChaosHarness(plan, workdir).run()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        harness = ChaosHarness(plan, tmp)
        try:
            return harness.run()
        finally:
            if harness.proc is not None and harness.proc.poll() is None:
                harness.kill_daemon()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Deterministic chaos harness for the simulation service")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--requests", type=int, default=6)
    parser.add_argument("--crash-fraction", type=float, default=0.34)
    parser.add_argument("--hang-fraction", type=float, default=0.17)
    parser.add_argument("--poison-requests", type=int, default=0)
    parser.add_argument("--daemon-kills", type=int, default=1)
    parser.add_argument("--truncate-tail", action="store_true")
    parser.add_argument("--scale", default="smoke")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--deadline", type=float, default=20.0)
    parser.add_argument("--retries", type=int, default=3)
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument("--workdir", default=None,
                        help="keep artifacts here instead of a temp dir")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write the JSON report to PATH")
    args = parser.parse_args(argv)
    plan = ChaosPlan(
        seed=args.seed, requests=args.requests,
        crash_fraction=args.crash_fraction, hang_fraction=args.hang_fraction,
        poison_requests=args.poison_requests, daemon_kills=args.daemon_kills,
        truncate_tail=args.truncate_tail, scale=args.scale,
        workers=args.workers, deadline=args.deadline, retries=args.retries,
        timeout=args.timeout,
    )
    report = run_chaos(plan, workdir=args.workdir)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.report:
        Path(args.report).write_text(text + "\n")
        print(f"wrote chaos report to {args.report}")
    summary = report["outcomes"]
    audit = report["audit"]
    print(f"chaos seed={plan.seed}: {report['daemon_kills']} daemon kill(s), "
          f"outcomes {summary}, exactly_once={audit['exactly_once']}, "
          f"mismatches={len(audit['expectation_mismatches'])}")
    return 0 if not audit["expectation_mismatches"] else 1


if __name__ == "__main__":
    sys.exit(main())
