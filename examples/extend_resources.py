#!/usr/bin/env python
"""Extending BBSched beyond two resources: the §5 local-SSD case study.

BBSched's MOO formulation is generic in the number of resources.  This
example builds a Theta-like cluster whose nodes carry heterogeneous local
SSDs (50 % with 128 GB, 50 % with 256 GB), attaches per-node SSD requests
to every job (the S6 workload: a 50/50 small/large split), and compares
the §5 method set under the four-objective formulation — node, burst
buffer, and SSD utilization plus SSD waste.

Run:  python examples/extend_resources.py
"""

from repro import SchedulingEngine, WFP, WindowPolicy, make_selector
from repro.experiments.kiviat import AXES_SECTION5
from repro.experiments.report import format_table, percent
from repro.methods import METHODS_SECTION5
from repro.simulator.metrics import compute_summary, trimmed_interval
from repro.workloads import (
    THETA,
    add_ssd_requests,
    expand_bb_requests,
    generate,
    theta_profile,
)


def build_workload():
    machine = THETA.scaled(8)
    base = generate(theta_profile(n_jobs=250, machine=machine), seed=10)
    cap = machine.schedulable_bb
    with_bb = expand_bb_requests(
        base, fraction=0.75, min_request=0.004 * cap, max_request=0.13 * cap,
        target_bb_load=0.8, seed=11,
    )
    # S6: 50 % of jobs request 0-128 GB/node, 50 % request 129-256 GB/node.
    # add_ssd_requests swaps in the machine variant with the 50/50 SSD split.
    return add_ssd_requests(with_bb, small_fraction=0.5, seed=12, name="Theta-S6-demo")


def main() -> None:
    trace = build_workload()
    tiers = dict(trace.machine.ssd_tiers)
    print(f"machine: {trace.machine.nodes} nodes, SSD tiers "
          + ", ".join(f"{int(c)}GB x {n}" for c, n in sorted(tiers.items())))

    rows = []
    for method in METHODS_SECTION5:
        selector = make_selector(method, generations=80, seed=13)
        engine = SchedulingEngine(
            trace.machine.make_cluster(), WFP(), selector, WindowPolicy(size=15)
        )
        result = engine.run(trace.fresh_jobs())
        interval = trimmed_interval(0.0, result.makespan)
        s = compute_summary(
            result.jobs, result.recorder, interval,
            total_nodes=result.total_nodes, bb_capacity=result.bb_capacity,
            ssd_capacity=result.ssd_capacity,
        )
        rows.append([
            method,
            percent(s.node_usage),
            percent(s.bb_usage),
            percent(s.ssd_usage),
            percent(s.ssd_waste),
            f"{s.avg_wait / 3600:.2f}h",
        ])
    print(format_table(
        rows,
        ["method", "node", "burst buffer", "SSD util", "SSD waste", "avg wait"],
        title="§5 four-objective comparison (Figure 14 in miniature)",
    ))
    print(f"\nKiviat axes used by the full Figure 14 experiment: {AXES_SECTION5}")


if __name__ == "__main__":
    main()
