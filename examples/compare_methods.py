#!/usr/bin/env python
"""Compare all eight §4.3 scheduling methods on a synthetic Theta workload.

Generates a capability-computing trace with Darshan-derived burst-buffer
requests, stresses it into the paper's S2 regime (75 % of jobs requesting
burst buffer), and replays it under every method, printing the four §4.2
metrics — a miniature of Figures 6, 7, 8, and 12.

Run:  python examples/compare_methods.py  [n_jobs]
"""

import sys

from repro import SchedulingEngine, WFP, WindowPolicy, make_selector
from repro.experiments.report import format_table, hours, percent
from repro.methods import METHODS_SECTION4
from repro.simulator.metrics import compute_summary, trimmed_interval
from repro.workloads import (
    THETA,
    expand_bb_requests,
    enhance_trace_with_darshan,
    generate,
    synthesize_darshan_log,
    theta_profile,
)


def build_workload(n_jobs: int):
    """Theta trace → Darshan enhancement → S2-style BB expansion (§4.1)."""
    base = generate(theta_profile(n_jobs=n_jobs, bb_fraction=0.0), seed=42)
    darshan = synthesize_darshan_log(base, seed=43)
    enhanced = enhance_trace_with_darshan(base, darshan)
    cap = enhanced.machine.schedulable_bb
    return expand_bb_requests(
        enhanced, fraction=0.75, min_request=0.004 * cap,
        max_request=0.13 * cap, target_bb_load=0.8, seed=44,
        name="Theta-S2-demo",
    )


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    trace = build_workload(n_jobs)
    print(f"workload: {trace.name}, {len(trace)} jobs, "
          f"{100 * trace.bb_fraction():.0f}% requesting burst buffer\n")

    rows = []
    for method in METHODS_SECTION4:
        selector = make_selector(method, generations=100, seed=7)
        engine = SchedulingEngine(
            trace.machine.make_cluster(), WFP(), selector, WindowPolicy(size=20)
        )
        result = engine.run(trace.fresh_jobs())
        interval = trimmed_interval(0.0, result.makespan)
        s = compute_summary(
            result.jobs, result.recorder, interval,
            total_nodes=result.total_nodes, bb_capacity=result.bb_capacity,
        )
        rows.append([
            method,
            percent(s.node_usage),
            percent(s.bb_usage),
            hours(s.avg_wait),
            f"{s.avg_slowdown:.2f}",
            f"{1e3 * result.stats.mean_selector_time:.1f}ms",
        ])
    print(format_table(
        rows,
        ["method", "node usage", "BB usage", "avg wait", "slowdown", "decision time"],
        title="Eight-method comparison (Figures 6-8, 12 in miniature)",
    ))


if __name__ == "__main__":
    main()
