#!/usr/bin/env python
"""Fault tolerance: node failures, job requeue, and the solver watchdog.

A 32-node machine with 10 TB of shared burst buffer replays the same
120-job queue twice — once on ideal hardware, once under a seeded fault
scenario that keeps taking nodes down and aborting jobs.  Killed jobs are
requeued with exponential backoff until their attempt budget runs out.
The third act wraps a deliberately slow selector in a
:class:`~repro.resilience.SolverWatchdog` to show the graceful-degradation
path: the budget is missed, the greedy fallback answers instead, and after
three consecutive misses the breaker trips.

Run:  python examples/fault_tolerance.py
"""

import time

from repro import (
    FCFS,
    Cluster,
    FaultInjector,
    FaultScenario,
    Job,
    RetryPolicy,
    SchedulingEngine,
    SolverWatchdog,
    WindowPolicy,
    compute_resilience_summary,
    make_selector,
    trimmed_interval,
)
from repro.methods.base import Selector
from repro.units import TB

NODES, BB = 32, 10 * TB

#: Aggressive rates so a 120-job demo sees plenty of incidents: a node
#: failure every ~30 simulated minutes, a spontaneous job abort hourly.
SCENARIO = FaultScenario(
    seed=2019,
    node_mtbf=1800.0, node_mttr=3600.0, nodes_per_failure=2,
    job_mtbf=3600.0,
)

RETRY = RetryPolicy(max_attempts=3, backoff=120.0, backoff_factor=2.0)


def make_queue():
    return [
        Job(jid=i, submit_time=90.0 * i, runtime=1800.0 + 240.0 * (i % 7),
            walltime=3600.0, nodes=2 + i % 8, bb=float(i % 4) * TB)
        for i in range(120)
    ]


def simulate(faults=None, retry=None, selector=None):
    engine = SchedulingEngine(
        Cluster(nodes=NODES, bb_capacity=BB),
        FCFS(),
        selector or make_selector("BBSched", generations=30, seed=7),
        WindowPolicy(size=8, starvation_bound=200),
        faults=faults,
        retry=retry,
    )
    return engine.run(make_queue())


def main() -> None:
    # 1. Ideal hardware: the reference run.
    ideal = simulate()
    done = sum(1 for j in ideal.jobs if j.end_time is not None)
    print(f"ideal hardware:   {done}/120 jobs completed, "
          f"makespan {ideal.makespan / 3600:.1f}h")

    # 2. Same queue on failing hardware.
    faulty = simulate(faults=FaultInjector(SCENARIO), retry=RETRY)
    interval = trimmed_interval(0.0, faulty.makespan)
    summary = compute_resilience_summary(
        faulty.jobs, faulty.recorder, faulty.stats, interval,
        total_nodes=NODES,
    )
    print(f"faulty hardware:  makespan {faulty.makespan / 3600:.1f}h "
          f"(+{100 * (faulty.makespan / ideal.makespan - 1):.0f}%)")
    print(f"  node failures   {faulty.stats.node_failures} "
          f"({faulty.stats.nodes_failed} node-downs, "
          f"mean online {100 * summary.mean_nodes_online:.1f}%)")
    print(f"  kills           {faulty.stats.killed_jobs} "
          f"({faulty.stats.job_faults} by job faults)")
    print(f"  requeued        {faulty.stats.requeued_jobs}")
    print(f"  abandoned       {faulty.stats.abandoned_jobs}")
    print(f"  lost node-hours {summary.lost_node_hours:.1f}")
    print(f"  usage vs online capacity {100 * summary.node_usage_degraded:.1f}%")
    retried = [j for j in faulty.jobs if j.attempts > 0 and j.end_time]
    if retried:
        j = retried[0]
        print(f"  e.g. job {j.jid}: killed {j.attempts}x, lost "
              f"{j.lost_node_seconds / 3600:.1f} node-hours, then finished")

    # 3. Watchdog: a stalling selector degrades to greedy instead of
    #    blocking the scheduler's event loop.
    class StallingSelector(Selector):
        name = "Stalling"

        def select(self, window, avail):
            time.sleep(0.05)               # pathological solve
            return self.greedy_in_order(window, avail, range(len(window)))

    watchdog = SolverWatchdog(StallingSelector(), budget=0.01, trip_after=3)
    guarded = simulate(selector=watchdog)
    done = sum(1 for j in guarded.jobs if j.end_time is not None)
    print(f"watchdog run:     {done}/120 jobs completed under a "
          f"{watchdog.budget * 1e3:.0f}ms budget")
    print(f"  selections      {watchdog.stats.calls} "
          f"({watchdog.stats.timeouts} deadline misses)")
    print(f"  fallbacks       {watchdog.stats.fallback_calls} "
          f"({100 * watchdog.stats.fallback_rate:.0f}% of calls)")
    print(f"  breaker tripped {watchdog.stats.tripped} "
          f"(inner selector bypassed after "
          f"{watchdog.trip_after} consecutive misses)")


if __name__ == "__main__":
    main()
