#!/usr/bin/env python
"""The §4.1 Theta trace-enhancement pipeline, end to end and file-based.

The paper joins Theta's Cobalt job log with Darshan I/O characterisation
logs to obtain burst-buffer requests ("the amount of data moved between
PFS and nodes" becomes the request when it exceeds 1 GB).  This example
walks the same pipeline through real files on disk:

1. synthesise a Theta job trace, write it as Standard Workload Format;
2. synthesise a Darshan-style I/O log, write it as CSV;
3. read both back, extract BB requests, enhance the trace;
4. simulate the enhanced trace and report burst-buffer metrics.

Run:  python examples/darshan_pipeline.py  [workdir]
"""

import sys
import tempfile
from pathlib import Path

from repro import FCFS, SchedulingEngine, WFP, WindowPolicy, make_selector
from repro.simulator.metrics import compute_summary, trimmed_interval
from repro.units import fmt_storage
from repro.workloads import (
    THETA,
    enhance_trace_with_darshan,
    generate,
    read_darshan_csv,
    read_swf,
    synthesize_darshan_log,
    theta_profile,
    write_darshan_csv,
    write_swf,
)


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    workdir.mkdir(parents=True, exist_ok=True)
    machine = THETA.scaled(8)

    # 1. Job log → SWF file.
    trace = generate(theta_profile(n_jobs=250, bb_fraction=0.0, machine=machine),
                     seed=1)
    swf_path = workdir / "theta.swf"
    write_swf(trace, swf_path)
    print(f"wrote job log        {swf_path} ({len(trace)} jobs)")

    # 2. Darshan log → CSV file.
    records = synthesize_darshan_log(trace, seed=2)
    darshan_path = workdir / "theta_darshan.csv"
    write_darshan_csv(records, darshan_path)
    print(f"wrote Darshan log    {darshan_path} ({len(records)} records)")

    # 3. Read back and enhance — the paper's extraction rule.
    trace_in = read_swf(swf_path, machine, name="theta-from-swf")
    records_in = read_darshan_csv(darshan_path)
    enhanced = enhance_trace_with_darshan(trace_in, records_in)
    n_bb = sum(1 for j in enhanced if j.uses_bb)
    print(f"enhanced trace:      {n_bb}/{len(enhanced)} jobs "
          f"({100 * enhanced.bb_fraction():.1f}%) now request burst buffer, "
          f"total {fmt_storage(enhanced.total_bb_volume())}")

    # 4. Simulate under BBSched.
    selector = make_selector("BBSched", generations=100, seed=3)
    engine = SchedulingEngine(
        machine.make_cluster(), WFP(), selector, WindowPolicy(size=20)
    )
    result = engine.run(enhanced.fresh_jobs())
    interval = trimmed_interval(0.0, result.makespan)
    summary = compute_summary(
        result.jobs, result.recorder, interval,
        total_nodes=result.total_nodes, bb_capacity=result.bb_capacity,
    )
    print(f"simulation:          node usage {100 * summary.node_usage:.1f}%, "
          f"BB usage {100 * summary.bb_usage:.1f}%, "
          f"avg wait {summary.avg_wait / 3600:.2f}h")


if __name__ == "__main__":
    main()
