#!/usr/bin/env python
"""Figure 3 walkthrough: watching the multi-objective GA evolve.

The paper's Figure 3 illustrates one evolution step on a 4-chromosome
population over a 5-job window.  This example reconstructs that setting
and prints the population, its objective values, and the Pareto members
generation by generation, so you can watch crossover/mutation/selection
approximate the true front.

Run:  python examples/ga_walkthrough.py
"""

from repro import ExhaustiveSolver, Job, MOGASolver, SelectionProblem
from repro.core.pareto import non_dominated_mask
from repro.units import TB

NODES, BB = 100, 100 * TB

JOBS = [  # the Table 1 queue — same window Figure 3's chromosomes select over
    Job(jid=1, submit_time=0, runtime=3600, walltime=3600, nodes=80, bb=20 * TB),
    Job(jid=2, submit_time=0, runtime=3600, walltime=3600, nodes=10, bb=85 * TB),
    Job(jid=3, submit_time=0, runtime=3600, walltime=3600, nodes=40, bb=5 * TB),
    Job(jid=4, submit_time=0, runtime=3600, walltime=3600, nodes=10, bb=0.0),
    Job(jid=5, submit_time=0, runtime=3600, walltime=3600, nodes=20, bb=0.0),
]


class NarratingSolver(MOGASolver):
    """MOGASolver that prints the surviving population each generation."""

    def __init__(self, problem, every=1, **kw):
        super().__init__(**kw)
        self._problem = problem
        self._every = every
        self._generation = 0

    def _survivors(self, genes, objectives, ages, rng, keys=None):
        keep = super()._survivors(genes, objectives, ages, rng, keys)
        if self._generation % self._every == 0:
            F = objectives[keep]
            front = non_dominated_mask(F)
            print(f"generation {self._generation}:")
            for g, (f1, f2), on_front in zip(genes[keep], F, front):
                mark = "*" if on_front else " "
                print(f"  {mark} {''.join(map(str, g))}  "
                      f"nodes {f1 / NODES:5.0%}  BB {f2 / BB:5.0%}")
        self._generation += 1
        return keep


def main() -> None:
    problem = SelectionProblem.from_window(JOBS, NODES, BB)

    print("True Pareto set (exhaustive over 2^5 selections):")
    truth = ExhaustiveSolver().solve(problem)
    for g, (f1, f2) in zip(truth.genes, truth.objectives):
        print(f"    {''.join(map(str, g))}  nodes {f1 / NODES:5.0%}  "
              f"BB {f2 / BB:5.0%}")
    print()

    # Figure 3's miniature setting: P=4 chromosomes, random init (the
    # paper's mode), narrated every few generations.
    solver = NarratingSolver(
        problem, every=5, generations=25, population=4,
        mutation=0.02, seed_greedy=False, seed=7,
    )
    result = solver.solve(problem)

    print("\nfinal Pareto approximation:")
    for g, (f1, f2) in zip(result.genes, result.objectives):
        print(f"    {''.join(map(str, g))}  nodes {f1 / NODES:5.0%}  "
              f"BB {f2 / BB:5.0%}")


if __name__ == "__main__":
    main()
