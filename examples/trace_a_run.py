#!/usr/bin/env python
"""Trace a simulation: spans, metrics, and a Perfetto-loadable export.

A 16-node machine with a small shared burst buffer replays an 80-job
queue under BBSched with a real :class:`~repro.telemetry.Tracer`
installed (``fine=True``, so even per-GA-generation spans are recorded).
The script then reads the trace three ways:

1. the span summary — where the wall-clock time went, by span name;
2. the engine's always-on metrics registry — events, jobs by start
   route, queue depth over *simulated* time, selector latency
   percentiles;
3. exported files — a Chrome ``trace_event`` JSON for
   https://ui.perfetto.dev and a JSONL trace for scripts.

Run:  python examples/trace_a_run.py [outdir]
"""

import pathlib
import sys

from repro import (
    FCFS,
    Cluster,
    Job,
    SchedulingEngine,
    Tracer,
    WindowPolicy,
    make_selector,
    use_tracer,
)
from repro.telemetry import render_report, write_chrome_trace, write_jsonl
from repro.units import TB

NODES, BB = 16, 2 * TB


def make_queue(n=80):
    return [
        Job(jid=i, submit_time=45.0 * i, runtime=900.0 + 180.0 * (i % 6),
            walltime=1800.0, nodes=1 + i % 6, bb=float(i % 4) * 0.1 * TB)
        for i in range(n)
    ]


def main(outdir):
    engine = SchedulingEngine(
        Cluster(nodes=NODES, bb_capacity=BB),
        FCFS(),
        make_selector("BBSched", generations=25, seed=11),
        WindowPolicy(size=8),
    )

    # Act 1: run with a tracer installed.  Without this `with` block the
    # engine talks to the inert NULL_TRACER and records nothing.
    tracer = Tracer(fine=True)
    with use_tracer(tracer):
        result = engine.run(make_queue())
    print(f"simulated {len(result.jobs)} jobs, makespan "
          f"{result.makespan / 3600.0:.1f} h — recorded "
          f"{len(tracer.spans)} spans, {len(tracer.instants)} instants")

    # Act 2: where did the time go?
    summary = tracer.summarize()
    print("\ntop spans by total wall-clock time:")
    for name, s in sorted(summary.items(), key=lambda kv: -kv[1]["total"])[:5]:
        print(f"  {name:<16} x{s['count']:<5} total {s['total'] * 1e3:8.1f} ms"
              f"  mean {s['mean'] * 1e6:8.1f} us")
    passes = summary["schedule_pass"]["count"]
    gens = summary.get("ga_generation", {"count": 0})["count"]
    print(f"  ({passes} scheduling passes; {gens} GA generations traced)")

    # The always-on registry works even untraced; here it rode along.
    selector = engine.metrics.histogram("engine.selector_seconds")
    depth = engine.metrics.gauge("engine.queue_depth")
    print(f"\nselector latency: p50 {selector.percentile(50) * 1e3:.2f} ms, "
          f"p99 {selector.percentile(99) * 1e3:.2f} ms over {selector.count} calls")
    print(f"queue depth: mean {depth.mean:.1f} (time-weighted), max {depth.max:.0f}")

    # Act 3: export.  Load trace.json at https://ui.perfetto.dev
    outdir.mkdir(parents=True, exist_ok=True)
    chrome = outdir / "trace.json"
    jsonl = outdir / "trace.jsonl"
    meta = {"workload": "example-80", "method": "BBSched"}
    write_chrome_trace(str(chrome), tracer, engine.metrics, meta=meta)
    write_jsonl(str(jsonl), tracer, engine.metrics, meta=meta)
    print(f"\nwrote {chrome} (open in Perfetto) and {jsonl}")

    print("\n" + render_report(tracer=tracer, metrics=engine.metrics,
                               title="full telemetry report"))


if __name__ == "__main__":
    main(pathlib.Path(sys.argv[1]) if len(sys.argv) > 1
         else pathlib.Path("results/trace_example"))
