#!/usr/bin/env python
"""Quickstart: the paper's Table 1 example through the public API.

A 100-node system with 100 TB of shared burst buffer has five jobs queued
(§1, Table 1).  We solve the window-selection problem three ways —
exhaustively (the true Pareto set), with BBSched's genetic MOO solver, and
with the naive Slurm-style method — then replay the queue through the full
discrete-event engine under each scheduling method.

Run:  python examples/quickstart.py
"""

from repro import (
    BBSchedSelector,
    Cluster,
    ExhaustiveSolver,
    FCFS,
    Job,
    MOGASolver,
    SchedulingEngine,
    SelectionProblem,
    WindowPolicy,
    make_selector,
    two_resource_rule,
)
from repro.units import TB

NODES, BB = 100, 100 * TB

# --- Table 1(a): the job queue ------------------------------------------------
JOBS = [
    # jid, nodes, burst buffer
    (1, 80, 20 * TB),
    (2, 10, 85 * TB),
    (3, 40, 5 * TB),
    (4, 10, 0.0),
    (5, 20, 0.0),
]


def make_queue():
    return [
        Job(jid=j, submit_time=0.0, runtime=3600.0, walltime=3600.0,
            nodes=n, bb=b, user=f"J{j}")
        for j, n, b in JOBS
    ]


def main() -> None:
    jobs = make_queue()

    # 1. Formulate the §3.2.1 multi-objective selection problem.
    problem = SelectionProblem.from_window(jobs, NODES, BB)

    # 2. True Pareto set by exhaustive enumeration (2^5 candidates).
    truth = ExhaustiveSolver().solve(problem)
    print("True Pareto set:")
    for genes, (f1, f2) in zip(truth.genes, truth.objectives):
        picked = "+".join(jobs[i].user for i in range(len(jobs)) if genes[i])
        print(f"  {picked:<14} node util {f1 / NODES:5.0%}   "
              f"BB util {f2 / BB:5.0%}")

    # 3. BBSched's GA approximates the same front in milliseconds.
    front = MOGASolver(generations=500, seed=0).solve(problem)
    decision = two_resource_rule().choose(front, scales=(NODES, BB))
    picked = "+".join(jobs[i].user for i in range(len(jobs)) if decision.genes[i])
    print(f"\nBBSched decision: run {picked} "
          f"(traded node-max away: {decision.traded})")

    # 4. Replay the queue through the event-driven engine per method.
    print("\nFull simulation (start times per method):")
    for method in ("Baseline", "Bin_Packing", "BBSched"):
        cluster = Cluster(nodes=NODES, bb_capacity=BB)
        selector = make_selector(method, generations=500, seed=0)
        engine = SchedulingEngine(cluster, FCFS(), selector, WindowPolicy(size=5))
        result = engine.run(make_queue())
        starts = ", ".join(
            f"{j.user}@{j.start_time:.0f}s" for j in result.jobs
        )
        print(f"  {method:<12} {starts}")


if __name__ == "__main__":
    main()
